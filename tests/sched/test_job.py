"""JobSpec content hashing and JobResult bookkeeping."""

import pytest

from repro.sched import JobResult, JobSpec


class TestScienceKey:
    def test_ignores_execution_fields(self):
        a = JobSpec(dataset="la", hours=2, machine="t3e", nprocs=16)
        b = JobSpec(dataset="la", hours=2, machine="paragon", nprocs=128,
                    variant="task", io_nodes=4)
        assert a.science_key == b.science_key
        assert a.key != b.key

    def test_depends_on_scenario(self):
        a = JobSpec(dataset="la", hours=2)
        assert a.science_key != JobSpec(dataset="ne", hours=2).science_key
        assert a.science_key != JobSpec(dataset="la", hours=3).science_key
        assert a.science_key != JobSpec(dataset="la", hours=2,
                                        perturb_seed=7,
                                        perturb_sigma=0.3).science_key


class TestKey:
    def test_stable_and_tag_free(self):
        a = JobSpec(dataset="la", hours=2, tag="run A")
        b = JobSpec(dataset="la", hours=2, tag="a totally different tag")
        assert a.key == b.key
        assert len(a.key) == 64

    def test_sequential_neutralizes_machine(self):
        a = JobSpec(variant="sequential", machine="t3e", nprocs=16)
        b = JobSpec(variant="sequential", machine="paragon", nprocs=128)
        assert a.key == b.key

    def test_parallel_variants_distinct(self):
        a = JobSpec(variant="data", machine="t3e", nprocs=16)
        b = JobSpec(variant="task", machine="t3e", nprocs=16)
        assert a.key != b.key

    def test_roundtrip(self):
        spec = JobSpec(dataset="ne", hours=4, perturb_seed=3,
                       perturb_sigma=0.2, tag="x")
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestValidation:
    def test_bad_hours(self):
        with pytest.raises(ValueError):
            JobSpec(hours=0)

    def test_bad_variant(self):
        with pytest.raises(ValueError):
            JobSpec(variant="mpi")

    def test_bad_sigma(self):
        with pytest.raises(ValueError):
            JobSpec(perturb_sigma=-0.1)

    def test_bad_nprocs(self):
        with pytest.raises(ValueError):
            JobSpec(variant="data", nprocs=0)


class TestLabel:
    def test_tag_wins(self):
        assert JobSpec(tag="my job").label == "my job"

    def test_default_label_mentions_configuration(self):
        label = JobSpec(dataset="la", hours=2, machine="t3e",
                        nprocs=16).label
        assert "la" in label and "t3e/16" in label

    def test_sequential_label_omits_machine(self):
        assert "t3e" not in JobSpec(variant="sequential").label


class TestJobResult:
    def test_ok_statuses(self):
        spec = JobSpec()
        assert JobResult(spec=spec, status="ok").ok
        assert JobResult(spec=spec, status="cached").ok
        assert not JobResult(spec=spec, status="failed").ok
        assert not JobResult(spec=spec, status="timeout").ok

    def test_summary_row_truncates_key(self):
        row = JobResult(spec=JobSpec(), status="ok").summary_row()
        assert len(row["key"]) == 12
        assert row["status"] == "ok"

    def test_sha_none_without_result(self):
        assert JobResult(spec=JobSpec(), status="failed")\
            .final_conc_sha256() is None


class TestEnsembleKey:
    def test_none_without_perturbation(self):
        assert JobSpec(dataset="la", hours=2).ensemble_key is None

    def test_shared_across_member_seeds(self):
        a = JobSpec(dataset="la", hours=2, perturb_seed=0,
                    perturb_sigma=0.3)
        b = JobSpec(dataset="la", hours=2, perturb_seed=7919,
                    perturb_sigma=0.3)
        assert a.ensemble_key == b.ensemble_key
        assert a.science_key != b.science_key

    def test_distinct_for_distinct_ensembles(self):
        base = JobSpec(dataset="la", hours=2, perturb_seed=0,
                       perturb_sigma=0.3)
        for other in (
            JobSpec(dataset="ne", hours=2, perturb_seed=0,
                    perturb_sigma=0.3),
            JobSpec(dataset="la", hours=3, perturb_seed=0,
                    perturb_sigma=0.3),
            JobSpec(dataset="la", hours=2, perturb_seed=0,
                    perturb_sigma=0.5),
        ):
            assert base.ensemble_key != other.ensemble_key
