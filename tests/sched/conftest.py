"""Shared fixtures for the campaign scheduler tests.

A tiny dataset is registered under ``tinysched`` so JobSpecs can refer
to it by name; registration is in-process only, so tests that exercise
the ``process`` executor must use a built-in dataset (``demo``).
"""

import pytest

from repro.datasets import DatasetSpec, register_dataset
from repro.grid import RefinementCore

TINY_SCHED_SPEC = DatasetSpec(
    name="tinysched",
    domain=(120.0, 90.0),
    base_shape=(4, 3),
    npoints=12 + 3 * 14,  # 54 points
    cores=(RefinementCore(40.0, 40.0, 5.0, 20.0),),
    layers=3,
    seed=1,
)


@pytest.fixture(scope="session", autouse=True)
def _register_tiny_dataset():
    register_dataset("tinysched", TINY_SCHED_SPEC.build)
