"""Dedupe, science chaining and LPT packing."""

from repro.sched import (
    CampaignCostModel,
    JobSpec,
    ResultCache,
    machine_grid,
    plan_campaign,
)


def test_empty_campaign_plans_to_nothing():
    plan = plan_campaign([], workers=4)
    assert plan.n_jobs == 0
    assert plan.predicted_makespan == 0.0
    assert plan.chains == []


def test_dedupe_by_content_hash():
    spec = JobSpec(dataset="demo", hours=1)
    twin = JobSpec(dataset="demo", hours=1, tag="same job, different tag")
    plan = plan_campaign([spec, twin, spec], workers=2)
    assert plan.n_jobs == 1
    assert plan.n_duplicates == 2
    assert plan.duplicates == {spec.key: 2}


def test_science_chain_shares_one_worker():
    specs = machine_grid(dataset="demo", machines=("t3e", "paragon"),
                         node_counts=(4, 16), hours=1)
    assert len({s.science_key for s in specs}) == 1
    plan = plan_campaign(specs, workers=4)
    assert plan.n_jobs == 4
    assert len(plan.chains) == 1
    workers = {plan.jobs[i].worker for i in plan.chains[0]}
    assert len(workers) == 1
    # exactly the first job of the chain pays the science run
    charged = [plan.jobs[i].science_charged for i in plan.chains[0]]
    assert charged[0] and not any(charged[1:])


def test_distinct_science_keys_spread_over_workers():
    specs = [JobSpec(dataset="demo", hours=h) for h in (1, 2, 3, 4)]
    plan = plan_campaign(specs, workers=4)
    assert len(plan.chains) == 4
    assert {plan.jobs[c[0]].worker for c in plan.chains} == {0, 1, 2, 3}


def test_ensemble_members_fuse_into_one_chain():
    """Members of one ensemble co-locate so the runner can batch them."""
    specs = [JobSpec(dataset="demo", hours=1, perturb_seed=i,
                     perturb_sigma=0.3) for i in range(4)]
    plan = plan_campaign(specs, workers=4)
    assert len(plan.chains) == 1
    # first member pays full science; the rest the marginal batched rate
    chain = [plan.jobs[i] for i in plan.chains[0]]
    assert not chain[0].fused
    assert all(j.fused for j in chain[1:])
    first = chain[0].predicted_s
    assert all(0.0 < j.predicted_s < first for j in chain[1:])
    # member order inside the chain is deterministic by seed
    seeds = [j.spec.perturb_seed for j in chain]
    assert seeds == sorted(seeds)


def test_no_fuse_spreads_ensemble_members():
    specs = [JobSpec(dataset="demo", hours=1, perturb_seed=i,
                     perturb_sigma=0.3) for i in range(4)]
    plan = plan_campaign(specs, workers=4, fuse_ensembles=False)
    assert len(plan.chains) == 4
    assert {plan.jobs[c[0]].worker for c in plan.chains} == {0, 1, 2, 3}
    assert not any(j.fused for j in plan.jobs)


def test_makespan_is_max_worker_load():
    specs = [JobSpec(dataset="demo", hours=h, perturb_seed=h,
                     perturb_sigma=0.1) for h in (1, 2, 3)]
    plan = plan_campaign(specs, workers=2)
    load = {}
    for job in plan.jobs:
        load[job.worker] = load.get(job.worker, 0.0) + job.predicted_s
    assert plan.predicted_makespan == max(load.values())
    # intra-worker schedule is contiguous
    for job in plan.jobs:
        assert job.end_s > job.start_s


def test_plan_is_deterministic():
    specs = machine_grid(dataset="demo", hours=1)
    a = plan_campaign(specs, workers=3).to_dict()
    b = plan_campaign(list(reversed(specs)), workers=3).to_dict()
    assert a["predicted_makespan_s"] == b["predicted_makespan_s"]
    assert {j["key"] for j in a["jobs"]} == {j["key"] for j in b["jobs"]}


def test_cached_science_waives_its_charge(tmp_path):
    cache = ResultCache(tmp_path / "c")
    spec = JobSpec(dataset="demo", hours=1)
    model = CampaignCostModel(cache=cache)
    charged = model.predict(spec, science_charged=True)
    cache.put_science(spec.science_key, {"stub": True})
    waived = model.predict(spec, science_charged=True)
    assert waived.science_s == 0.0
    assert waived.wall_s < charged.wall_s


def test_predicted_for_unknown_key_raises():
    import pytest

    plan = plan_campaign([JobSpec(dataset="demo", hours=1)], workers=1)
    with pytest.raises(KeyError):
        plan.predicted_for("no-such-key")
