"""Golden test: the composed runner reproduces the pre-refactor run.

``golden_demo_ladder.json`` was captured from the scheduler *before*
the executor/planner/store seams were extracted (same demo ladder,
inline executor, two workers).  The refactored
:class:`~repro.sched.runner.CampaignRunner` must reproduce it exactly:
same plan (chains, keys, worker placement), same job payload SHAs and
attempt counts, same span sequence, same counters.
"""

import json
from pathlib import Path

from repro.sched import CampaignRunner, ResultCache, scaling_ladder

GOLDEN = Path(__file__).parent / "golden_demo_ladder.json"


def test_demo_ladder_matches_pre_refactor_golden(tmp_path):
    specs = scaling_ladder(
        dataset="demo", machine="t3e", node_counts=(1, 4, 16, 64), hours=1
    )
    runner = CampaignRunner(
        ResultCache(tmp_path / "cache"), workers=2, executor="inline",
        sleep=lambda s: None,
    )
    plan = runner.plan(specs)
    report = runner.run(specs, plan=plan)

    observed = {
        "plan": {
            "chains": [
                [plan.jobs[i].key for i in chain] for chain in plan.chains
            ],
            "workers": [j.worker for j in plan.jobs],
            "keys": [j.key for j in plan.jobs],
        },
        "jobs": [
            {
                "key": r.key,
                "status": r.status,
                "attempts": r.attempts,
                "sha256": r.final_conc_sha256(),
                "sim_total_s": (
                    round(r.timing.total_time, 10) if r.timing else None
                ),
            }
            for r in report.results
        ],
        "spans": [
            {
                "name": s.name,
                "kind": s.kind,
                "node": s.node,
                "status": s.attrs.get("status"),
                "attempts": s.attrs.get("attempts"),
                "key": s.attrs.get("key"),
            }
            for s in runner.tracer.spans
        ],
        "counters": dict(report.counters),
    }
    golden = json.loads(GOLDEN.read_text())
    assert observed == golden
