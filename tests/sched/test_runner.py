"""CampaignRunner: caching, retries, timeouts, bitwise identity.

The mandated edge cases live here: empty campaign, dedupe by hash,
bitwise-identical cache hits, retry-then-succeed with checkpoint
resume, and timeout-then-fail with a partial summary.
"""

import numpy as np
import pytest

from repro.datasets import get_dataset, register_dataset
from repro.model import AirshedConfig, SequentialAirshed
from repro.sched import (
    CampaignRunner,
    FaultPolicy,
    JobSpec,
    ResultCache,
)

SPEC = JobSpec(dataset="tinysched", hours=2, start_hour=7,
               variant="sequential")


def make_runner(tmp_path, **kw):
    sleeps = []
    kw.setdefault("executor", "inline")
    kw.setdefault("workers", 2)
    runner = CampaignRunner(ResultCache(tmp_path / "cache"),
                            sleep=sleeps.append, **kw)
    return runner, sleeps


def reference_result():
    cfg = AirshedConfig(dataset=get_dataset("tinysched"), hours=2,
                        start_hour=7)
    return SequentialAirshed(cfg).run()


def test_empty_campaign(tmp_path):
    runner, _ = make_runner(tmp_path)
    report = runner.run([])
    assert report.complete
    assert report.results == []
    assert report.predicted_makespan_s == 0.0
    assert report.observed_makespan_s == 0.0
    assert "(empty campaign)" in report.render()


def test_duplicate_specs_run_once(tmp_path):
    runner, _ = make_runner(tmp_path)
    report = runner.run([SPEC, JobSpec(**{**SPEC.to_dict(), "tag": "twin"}),
                         SPEC])
    assert report.plan.n_duplicates == 2
    assert len(report.results) == 1
    assert report.counters["campaign:jobs"] == 1


def test_campaign_result_bitwise_identical_to_direct_run(tmp_path):
    runner, _ = make_runner(tmp_path)
    report = runner.run([SPEC])
    [res] = report.results
    assert res.status == "ok"
    direct = reference_result()
    np.testing.assert_array_equal(res.result.final_conc, direct.final_conc)
    for sp in direct.hourly_mean:
        np.testing.assert_array_equal(res.result.hourly_mean[sp],
                                      direct.hourly_mean[sp])


def test_cache_hit_rerun_does_zero_simulation(tmp_path):
    runner, _ = make_runner(tmp_path)
    first = runner.run([SPEC])
    assert first.counters["campaign:sim_hours"] == SPEC.hours

    rerun, _ = make_runner(tmp_path)
    report = rerun.run([SPEC])
    [res] = report.results
    assert res.status == "cached" and res.from_cache
    assert res.attempts == 0
    assert report.cache_hits == 1
    assert report.counters.get("campaign:sim_hours", 0) == 0
    np.testing.assert_array_equal(res.result.final_conc,
                                  first.results[0].result.final_conc)


def test_retry_after_fault_resumes_from_checkpoint(tmp_path):
    policy = FaultPolicy(keys=(SPEC.key,), mode="raise", after_hours=1)
    runner, sleeps = make_runner(tmp_path, fault_policy=policy,
                                 retries=2, backoff=0.5)
    report = runner.run([SPEC])
    [res] = report.results
    assert res.status == "ok"
    assert res.attempts == 2 and res.retries == 1
    assert res.backoffs == [0.5] and sleeps == [0.5]
    assert report.counters["campaign:faults"] == 1
    # resume, not restart: 1h before the fault + 1h after = 2h total
    # (a restart would have charged 3 simulated hours)
    assert report.counters["campaign:sim_hours"] == SPEC.hours
    np.testing.assert_array_equal(res.result.final_conc,
                                  reference_result().final_conc)


def test_hang_with_no_retry_budget_fails_with_partial_summary(tmp_path):
    hung = JobSpec(dataset="tinysched", hours=1, start_hour=7,
                   variant="sequential")
    policy = FaultPolicy(keys=(hung.key,), mode="hang", after_hours=0)
    runner, sleeps = make_runner(tmp_path, fault_policy=policy, retries=0,
                                 timeout=30.0)
    report = runner.run([SPEC, hung])
    assert not report.complete
    assert report.n_ok == 1 and report.n_failed == 1
    by_key = {r.key: r for r in report.results}
    failed = by_key[hung.key]
    assert failed.status == "timeout"
    assert failed.attempts == 1
    assert "InjectedHang" in failed.error
    assert sleeps == []  # no retry budget, no backoff charged
    assert report.counters["campaign:timeouts"] == 1
    # the surviving job still reports normally
    assert by_key[SPEC.key].status == "ok"
    assert "1 failed" in report.render()


def test_exhausted_real_failure_reports_failed(tmp_path):
    # a dataset whose builder works once (so planning can price the
    # job) and then breaks: every execution attempt fails for real
    calls = {"n": 0}

    def flaky_builder():
        calls["n"] += 1
        if calls["n"] > 1:
            raise RuntimeError("inventory service down")
        return get_dataset("tinysched")

    register_dataset("flakysched", flaky_builder)
    bad = JobSpec(dataset="flakysched", hours=1, variant="sequential")
    runner, sleeps = make_runner(tmp_path, retries=1, backoff=0.1)
    report = runner.run([bad])
    [res] = report.results
    assert res.status == "failed"
    assert res.attempts == 2
    assert "inventory service down" in res.error
    assert sleeps == [0.1]
    assert report.counters["campaign:failures"] == 2


def test_science_shared_across_replay_jobs(tmp_path):
    specs = [JobSpec(dataset="tinysched", hours=1, start_hour=7,
                     variant="data", machine=m, nprocs=8)
             for m in ("t3e", "paragon")]
    runner, _ = make_runner(tmp_path)
    report = runner.run(specs)
    assert report.n_ok == 2
    assert report.counters["campaign:sim_hours"] == 1
    assert report.counters["campaign:science_cache_hits"] == 1
    digests = {r.final_conc_sha256() for r in report.results}
    assert len(digests) == 1
    timings = [r.timing for r in report.results]
    assert all(t is not None and t.total_time > 0 for t in timings)


def test_thread_executor_matches_inline(tmp_path):
    specs = [JobSpec(dataset="tinysched", hours=1, start_hour=7,
                     variant="data", machine="t3e", nprocs=p)
             for p in (2, 8)]
    inline, _ = make_runner(tmp_path / "a", executor="inline")
    threaded, _ = make_runner(tmp_path / "b", executor="thread")
    ra, rb = inline.run(specs), threaded.run(specs)
    assert {r.key: r.final_conc_sha256() for r in ra.results} == \
        {r.key: r.final_conc_sha256() for r in rb.results}


def test_job_spans_and_makespan(tmp_path):
    runner, _ = make_runner(tmp_path)
    report = runner.run([SPEC])
    spans = [s for s in runner.tracer.spans if s.kind == "job"]
    assert len(spans) == 1
    assert report.observed_makespan_s > 0.0
    assert report.predicted_makespan_s > 0.0
    # a cached rerun still emits a span, at ~zero cost
    report2 = runner.run([SPEC])
    assert report2.observed_makespan_s >= 0.0


def test_retry_backoff_excluded_from_observed_makespan(tmp_path):
    from repro.observe.compare import observed_makespan

    policy = FaultPolicy(keys=(SPEC.key,), mode="raise", after_hours=1)
    runner, _ = make_runner(tmp_path, fault_policy=policy,
                            retries=2, backoff=0.5)
    report = runner.run([SPEC])
    [span] = [s for s in runner.tracer.spans if s.kind == "job"]
    # the backoff charged to the retry is on the span, not in the makespan
    assert span.attrs["queue_wait_s"] == pytest.approx(0.5)
    raw = observed_makespan(runner.tracer.spans, kinds=("job",))
    assert report.observed_makespan_s == pytest.approx(
        max(raw - 0.5, 0.0))


def test_invalid_runner_parameters(tmp_path):
    cache = ResultCache(tmp_path / "c")
    with pytest.raises(ValueError):
        CampaignRunner(cache, workers=0)
    with pytest.raises(ValueError):
        CampaignRunner(cache, retries=-1)
    with pytest.raises(ValueError):
        CampaignRunner(cache, backoff=-0.1)
    with pytest.raises(ValueError):
        CampaignRunner(cache, executor="gpu")


@pytest.mark.slow
def test_process_executor_kills_real_hang(tmp_path):
    spec = JobSpec(dataset="demo", hours=1, variant="sequential")
    policy = FaultPolicy(keys=(spec.key,), mode="hang", after_hours=1)
    runner, sleeps = make_runner(tmp_path, executor="process",
                                 fault_policy=policy, retries=1,
                                 backoff=0.0, timeout=15.0)
    report = runner.run([spec])
    [res] = report.results
    assert res.status == "ok"
    assert res.attempts == 2
    assert report.counters["campaign:timeouts"] == 1


def test_fused_ensemble_batches_members_and_hits_cache(tmp_path):
    from repro.sched import ensemble_sweep

    specs = ensemble_sweep(dataset="tinysched", members=4, sigma=0.3,
                           seed=2, hours=1, start_hour=7,
                           variant="sequential")
    runner, _ = make_runner(tmp_path)
    report = runner.run(specs)
    assert report.complete and report.n_ok == 4
    # one fused sweep primed the science cache for every member...
    assert report.counters["campaign:batches"] == 1
    assert report.counters["campaign:batched_members"] == 4
    assert report.counters["campaign:sim_hours"] == 4
    # ...so each member job lands on its own per-member cache entry
    assert report.counters["campaign:science_cache_hits"] == 4
    [span] = [s for s in runner.tracer.spans if s.kind == "batch"]
    assert span.attrs["members"] == 4
    # bitwise: fused members equal what an unfused campaign produces
    plain, _ = make_runner(tmp_path / "plain", fuse_ensembles=False)
    unfused = plain.run(specs)
    assert unfused.counters.get("campaign:batches", 0) == 0
    assert {r.key: r.final_conc_sha256() for r in report.results} == \
        {r.key: r.final_conc_sha256() for r in unfused.results}


def test_partially_cached_ensemble_batches_only_uncached(tmp_path):
    from repro.sched import ensemble_sweep

    specs = ensemble_sweep(dataset="tinysched", members=3, sigma=0.3,
                           seed=5, hours=1, start_hour=7,
                           variant="sequential")
    warm, _ = make_runner(tmp_path)
    warm.run([specs[0]])

    runner, _ = make_runner(tmp_path)  # same cache directory
    report = runner.run(specs)
    assert report.complete and report.n_ok == 3
    # subset batching is exact, so only the 2 uncached members fuse
    assert report.counters["campaign:batches"] == 1
    assert report.counters["campaign:batched_members"] == 2
    assert report.counters["campaign:sim_hours"] == 2
    # member 0 replays from the full result cache; the two batched
    # members land on the science entries the prefetch just wrote
    assert report.cache_hits == 1
    assert report.counters["campaign:science_cache_hits"] == 2
