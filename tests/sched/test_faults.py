"""Deterministic fault-policy selection."""

import pytest

from repro.sched import FaultPolicy

KEYS = [f"{i:02x}" * 32 for i in range(16)]


class TestSelects:
    def test_explicit_key_and_prefix(self):
        policy = FaultPolicy(keys=(KEYS[0], KEYS[1][:8]))
        assert policy.selects(KEYS[0])
        assert policy.selects(KEYS[1])
        assert not policy.selects(KEYS[2])

    def test_fraction_bounds(self):
        assert not any(FaultPolicy(fraction=0.0).selects(k) for k in KEYS)
        assert all(FaultPolicy(fraction=1.0).selects(k) for k in KEYS)

    def test_fraction_is_seed_deterministic(self):
        a = [FaultPolicy(seed=3, fraction=0.5).selects(k) for k in KEYS]
        b = [FaultPolicy(seed=3, fraction=0.5).selects(k) for k in KEYS]
        assert a == b
        assert any(a) and not all(a)


class TestAction:
    def test_fires_only_on_first_attempt(self):
        policy = FaultPolicy(keys=(KEYS[0],), mode="hang")
        assert policy.action(KEYS[0], attempt=0) == "hang"
        assert policy.action(KEYS[0], attempt=1) is None
        assert policy.action(KEYS[1], attempt=0) is None


class TestPick:
    def test_picks_exactly_n_deterministically(self):
        a = FaultPolicy.pick(KEYS, 3, seed=1)
        b = FaultPolicy.pick(list(reversed(KEYS)), 3, seed=1)
        assert a.keys == b.keys  # submission order irrelevant
        assert len(a.keys) == 3
        assert FaultPolicy.pick(KEYS, 3, seed=2).keys != a.keys

    def test_n_larger_than_pool(self):
        assert len(FaultPolicy.pick(KEYS[:2], 10).keys) == 2

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy.pick(KEYS, -1)


class TestValidation:
    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            FaultPolicy(fraction=1.5)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            FaultPolicy(mode="explode")

    def test_bad_after_hours(self):
        with pytest.raises(ValueError):
            FaultPolicy(after_hours=-1)
