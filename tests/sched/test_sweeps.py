"""Sweep generators: shapes, tags and science sharing."""

import pytest

from repro.sched import ensemble_sweep, machine_grid, scaling_ladder


def test_machine_grid_covers_the_cross_product():
    specs = machine_grid(dataset="la", machines=("t3e", "t3d"),
                         node_counts=(16, 64), hours=2)
    assert len(specs) == 4
    assert {(s.machine, s.nprocs) for s in specs} == {
        ("t3e", 16), ("t3e", 64), ("t3d", 16), ("t3d", 64)}
    assert len({s.science_key for s in specs}) == 1
    assert len({s.key for s in specs}) == 4


def test_scaling_ladder_one_job_per_p():
    specs = scaling_ladder(dataset="demo", machine="paragon",
                           node_counts=(1, 4, 16), hours=1)
    assert [s.nprocs for s in specs] == [1, 4, 16]
    assert all(s.machine == "paragon" for s in specs)
    assert len({s.science_key for s in specs}) == 1


def test_ensemble_sweep_matches_emission_ensemble_seeds():
    # EmissionEnsemble.member_config uses seed * 7919 + index; the sweep
    # must reproduce it so campaign members equal in-process members.
    seed, members = 3, 5
    specs = ensemble_sweep(dataset="demo", members=members, sigma=0.25,
                           seed=seed, hours=1)
    assert [s.perturb_seed for s in specs] == \
        [seed * 7919 + i for i in range(members)]
    assert all(s.perturb_sigma == 0.25 for s in specs)
    # every member is a distinct scenario: distinct science keys
    assert len({s.science_key for s in specs}) == members


def test_ensemble_sweep_rejects_empty():
    with pytest.raises(ValueError):
        ensemble_sweep(members=0)


def test_ensemble_batches_groups_members_by_ensemble():
    from repro.sched import ensemble_batches

    members = ensemble_sweep(dataset="demo", members=3, sigma=0.3,
                             seed=1, hours=1)
    other = ensemble_sweep(dataset="demo", members=2, sigma=0.5,
                           seed=1, hours=1)
    plain = machine_grid(dataset="demo", machines=("t3e",),
                         node_counts=(4,), hours=1)
    groups = ensemble_batches(list(reversed(members)) + other + plain)
    assert len(groups) == 2  # plain jobs never batch
    sizes = sorted(len(g) for g in groups.values())
    assert sizes == [2, 3]
    for group in groups.values():
        seeds = [s.perturb_seed for s in group]
        assert seeds == sorted(seeds)
        assert len({s.ensemble_key for s in group}) == 1


def test_ensemble_batches_collapses_shared_science_and_singletons():
    from repro.sched import ensemble_batches

    member = ensemble_sweep(dataset="demo", members=1, sigma=0.3,
                            seed=0, hours=1)[0]
    # a replay twin shares the science key: one cache entry, one slot
    twin = ensemble_sweep(dataset="demo", members=1, sigma=0.3, seed=0,
                          hours=1, machine="paragon", nprocs=4,
                          variant="data")[0]
    assert member.science_key == twin.science_key
    assert ensemble_batches([member, twin]) == {}  # 1 scenario: no batch
