"""Sweep generators: shapes, tags and science sharing."""

import pytest

from repro.sched import ensemble_sweep, machine_grid, scaling_ladder


def test_machine_grid_covers_the_cross_product():
    specs = machine_grid(dataset="la", machines=("t3e", "t3d"),
                         node_counts=(16, 64), hours=2)
    assert len(specs) == 4
    assert {(s.machine, s.nprocs) for s in specs} == {
        ("t3e", 16), ("t3e", 64), ("t3d", 16), ("t3d", 64)}
    assert len({s.science_key for s in specs}) == 1
    assert len({s.key for s in specs}) == 4


def test_scaling_ladder_one_job_per_p():
    specs = scaling_ladder(dataset="demo", machine="paragon",
                           node_counts=(1, 4, 16), hours=1)
    assert [s.nprocs for s in specs] == [1, 4, 16]
    assert all(s.machine == "paragon" for s in specs)
    assert len({s.science_key for s in specs}) == 1


def test_ensemble_sweep_matches_emission_ensemble_seeds():
    # EmissionEnsemble.member_config uses seed * 7919 + index; the sweep
    # must reproduce it so campaign members equal in-process members.
    seed, members = 3, 5
    specs = ensemble_sweep(dataset="demo", members=members, sigma=0.25,
                           seed=seed, hours=1)
    assert [s.perturb_seed for s in specs] == \
        [seed * 7919 + i for i in range(members)]
    assert all(s.perturb_sigma == 0.25 for s in specs)
    # every member is a distinct scenario: distinct science keys
    assert len({s.science_key for s in specs}) == members


def test_ensemble_sweep_rejects_empty():
    with pytest.raises(ValueError):
        ensemble_sweep(members=0)
