"""The ``cores_per_job`` dimension: identity, pricing, clamping.

Tiled chemistry is bitwise-invariant in worker count (pinned by
``tests/chemistry/test_tiled.py``), so ``cores_per_job`` is a
presentation/placement field: it must never fragment the content-
addressed cache, while still changing wall-clock *predictions* (Amdahl
intra-job speedup) and plan *placement* (host-core clamping).
"""

import pytest

from repro.perfmodel import (
    TILE_EFFICIENCY,
    chemistry_fraction,
    intra_job_speedup,
)
from repro.sched import CampaignCostModel, JobSpec, plan_campaign
from repro.sched.planner import LPTPlanner


def spec(cores=1, **kw):
    kw.setdefault("dataset", "demo")
    kw.setdefault("hours", 1)
    return JobSpec(cores_per_job=cores, **kw)


class TestJobSpecIdentity:
    def test_cores_never_change_the_key(self):
        base = spec(cores=1)
        wide = spec(cores=8)
        assert base.key == wide.key
        assert base.science_key == wide.science_key

    def test_cores_are_a_presentation_field(self):
        assert "cores_per_job" in JobSpec.PRESENTATION_FIELDS

    def test_label_shows_cores_only_when_parallel(self):
        assert "2c" in spec(cores=2).label
        assert "1c" not in spec(cores=1).label

    def test_cores_validated(self):
        with pytest.raises(ValueError):
            spec(cores=0)

    def test_roundtrip_preserves_cores(self):
        s = spec(cores=4)
        assert JobSpec.from_dict(s.to_dict()).cores_per_job == 4


class TestIntraJobSpeedup:
    def test_single_core_is_identity(self):
        assert intra_job_speedup(1, 0.97) == 1.0
        assert intra_job_speedup(4, 0.0) == 1.0

    def test_amdahl_shape(self):
        s2 = intra_job_speedup(2, 0.97)
        s4 = intra_job_speedup(4, 0.97)
        assert 1.0 < s2 < 2.0
        assert s2 < s4 < 4.0

    def test_perfect_fraction_full_efficiency(self):
        assert intra_job_speedup(4, 1.0, efficiency=1.0) == pytest.approx(4.0)

    def test_efficiency_discount_applies(self):
        assert 0.0 < TILE_EFFICIENCY <= 1.0
        assert intra_job_speedup(4, 1.0) < intra_job_speedup(
            4, 1.0, efficiency=1.0
        )


class TestCostModelPricing:
    def test_more_cores_predict_less_wall(self):
        model = CampaignCostModel()
        t1 = model.science_seconds(spec(cores=1))
        t4 = model.science_seconds(spec(cores=4))
        assert t4 < t1
        # chemistry dominates the estimated trace, so 4 cores should
        # recover a sizable share of the Amdahl bound
        assert t1 / t4 > 1.5

    def test_pricing_matches_amdahl_formula(self):
        model = CampaignCostModel()
        s = spec(cores=4)
        trace = model._trace(s)
        expected = model.science_seconds(spec(cores=1)) / intra_job_speedup(
            4, chemistry_fraction(trace)
        )
        assert model.science_seconds(s) == pytest.approx(expected)


class TestPlannerClamp:
    def test_host_cores_clamp_workers(self):
        specs = [spec(cores=4, variant="sequential"),
                 spec(cores=4, variant="data")]
        plan = plan_campaign(specs, workers=8, host_cores=8)
        assert plan.workers == 2  # 8 cores / 4 per job

    def test_clamp_never_below_one(self):
        plan = plan_campaign([spec(cores=16)], workers=4, host_cores=2)
        assert plan.workers == 1

    def test_no_clamp_without_host_cores(self):
        plan = plan_campaign([spec(cores=16)], workers=4)
        assert plan.workers == 4

    def test_host_cores_validated(self):
        with pytest.raises(ValueError):
            plan_campaign([spec()], workers=2, host_cores=0)

    def test_lpt_planner_passes_host_cores(self):
        plan = LPTPlanner().plan([spec(cores=2)], workers=4, host_cores=4)
        assert plan.workers == 2


class TestServiceDefault:
    def test_service_stamps_default_cores(self, tmp_path):
        from repro.service import CampaignService

        svc = CampaignService(tmp_path, workers=1, chem_workers=3)
        submitted = spec(variant="sequential")
        cid = svc.submit("t", [submitted])
        stamped = svc.campaigns[cid].specs[0]
        assert stamped.cores_per_job == 3
        assert stamped.key == submitted.key  # cache identity unchanged

    def test_explicit_cores_win_over_service_default(self, tmp_path):
        from repro.service import CampaignService

        svc = CampaignService(tmp_path, workers=1, chem_workers=3)
        cid = svc.submit("t", [spec(cores=2, variant="sequential")])
        assert svc.campaigns[cid].specs[0].cores_per_job == 2

    def test_chem_workers_validated(self, tmp_path):
        from repro.service import CampaignService

        with pytest.raises(ValueError):
            CampaignService(tmp_path, chem_workers=0)
