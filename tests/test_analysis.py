"""Tests for the analysis layer (figures, reports)."""

import math

import pytest

from repro.analysis import (
    all_figures,
    figure2,
    figure4,
    figure6,
    figure9,
    format_table,
    timing_report,
    trace_summary,
)
from repro.model import replay_data_parallel
from repro.vm import CRAY_T3E, utilization

NODES = (2, 4, 8)


class TestFigures:
    def test_figure2_structure(self, tiny_trace):
        header, rows = figure2(tiny_trace, node_counts=NODES)
        assert header[0] == "nodes"
        assert len(header) == 4  # nodes + 3 machines
        assert [r[0] for r in rows] == list(NODES)
        for row in rows:
            assert all(v > 0 for v in row[1:])

    def test_figure4_rows_sum_close_to_total(self, tiny_trace):
        header, rows = figure4(tiny_trace, node_counts=NODES)
        for row in rows:
            P = row[0]
            total = replay_data_parallel(tiny_trace, CRAY_T3E, P).total_time
            assert sum(row[1:]) == pytest.approx(total, rel=0.02)

    def test_figure6_measured_vs_predicted_pairs(self, tiny_trace):
        header, rows = figure6(tiny_trace, node_counts=(4,))
        assert len(rows) == 3  # three comm steps
        for _, step, measured, predicted in rows:
            assert predicted == pytest.approx(measured, rel=0.5), step

    def test_figure9_speedups(self, tiny_trace):
        header, rows = figure9(tiny_trace, node_counts=(4, 8))
        for row in rows:
            assert row[1] > 1.0  # data-parallel speedup over 1 node
            assert not math.isnan(row[2])

    def test_all_figures_keys(self, tiny_trace):
        figs = all_figures(tiny_trace)
        assert set(figs) == {
            "fig2_machines", "fig4_components", "fig5_redistribution",
            "fig6_comm_predicted", "fig7_comp_predicted", "fig9_taskparallel",
        }


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)
        assert "2.5" in text and "0.125" in text

    def test_format_table_empty(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_trace_summary_contents(self, tiny_trace):
        text = trace_summary(tiny_trace)
        assert "tiny" in text
        assert "redistributions" in text
        assert "chemistry" in text

    def test_timing_report_contents(self, tiny_trace):
        timing = replay_data_parallel(tiny_trace, CRAY_T3E, 4)
        text = timing_report(timing)
        assert "Cray T3E" in text
        assert "chemistry" in text
        assert "comm steps" in text

    def test_timing_report_with_utilization(self, tiny_trace):
        from repro.fx.runtime import FxRuntime
        from repro.model.dataparallel import HourReplayer

        rt = FxRuntime(CRAY_T3E, 4)
        replayer = HourReplayer(rt.world, tiny_trace)
        for hour in tiny_trace.hours:
            replayer.run_hour(hour)
        from repro.model.dataparallel import _timing_from_runtime

        util = utilization(rt.timeline, 4)
        text = timing_report(_timing_from_runtime(rt), util)
        assert "utilisation" in text
        assert "imbalance" in text
