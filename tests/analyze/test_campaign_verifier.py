"""FX04x campaign-plan verification: key drift, fusion legality,
chain ordering, runner policy."""

from dataclasses import dataclass

import pytest

from repro.analyze import (
    Severity,
    verify_campaign,
    verify_chain_ordering,
    verify_fused_groups,
    verify_jobspec_schema,
    verify_runner_policy,
)
from repro.sched import (
    FaultPolicy,
    JobSpec,
    ensemble_sweep,
    machine_grid,
    plan_campaign,
    scaling_ladder,
)


def codes(diags):
    return sorted(d.code for d in diags)


# ---------------------------------------------------------------------------
# FX040 — cache-key drift
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DriftSpec(JobSpec):
    """A physics field the author forgot to add to _SCIENCE_FIELDS."""

    wind_scale: float = 1.0


@dataclass(frozen=True)
class CosmeticSpec(JobSpec):
    """A declared presentation field must NOT trip the drift check."""

    PRESENTATION_FIELDS = JobSpec.PRESENTATION_FIELDS + ("color",)

    color: str = "blue"


class PhantomSpec(JobSpec):
    """Hashes a name that is not a dataclass field at all."""

    def science_fields(self):
        fields = super().science_fields()
        fields["wind_scale"] = 1.0
        return fields


class TestKeyDrift:
    def test_shipped_jobspec_is_drift_free(self):
        assert verify_jobspec_schema(JobSpec) == []

    def test_unhashed_field_is_fx040(self):
        diags = verify_jobspec_schema(DriftSpec)
        assert codes(diags) == ["FX040"]
        assert diags[0].severity is Severity.ERROR
        assert "wind_scale" in diags[0].message
        # the smoking gun: two specs differing only in the dropped
        # field collapse to one cache key.
        assert (DriftSpec(wind_scale=1.0).key
                == DriftSpec(wind_scale=2.0).key)

    def test_phantom_hashed_name_is_fx040(self):
        diags = verify_jobspec_schema(PhantomSpec)
        assert codes(diags) == ["FX040"]
        assert "wind_scale" in diags[0].message

    def test_declared_presentation_field_is_exempt(self):
        assert verify_jobspec_schema(CosmeticSpec) == []

    def test_verify_campaign_surfaces_drift(self):
        report = verify_campaign([DriftSpec(dataset="demo", hours=1)])
        assert "FX040" in {d.code for d in report.diagnostics}
        assert report.exit_code == 2
        assert report.summary["spec_class"] == "DriftSpec"


# ---------------------------------------------------------------------------
# FX041 / FX042 — ensemble-fusion legality
# ---------------------------------------------------------------------------
class BrokenEnsembleKey(JobSpec):
    """An ensemble_key override that groups jobs with different physics."""

    @property
    def ensemble_key(self):
        return "constant" * 8


def _ensemble(members=3, **kw):
    return ensemble_sweep(dataset="demo", members=members, hours=1,
                          variant="sequential", **kw)


class TestFusionLegality:
    def test_planner_fusion_is_legal(self):
        plan = plan_campaign(_ensemble(), workers=2)
        assert any(j.fused for j in plan.jobs)
        assert verify_fused_groups(plan) == []

    def test_mixed_physics_fusion_is_fx041(self):
        specs = [
            BrokenEnsembleKey(dataset="demo", hours=1, variant="sequential",
                              perturb_seed=0, perturb_sigma=0.3),
            BrokenEnsembleKey(dataset="demo", hours=2, variant="sequential",
                              perturb_seed=1, perturb_sigma=0.3),
        ]
        plan = plan_campaign(specs, workers=2)
        assert any(j.fused for j in plan.jobs), "broken key must fuse them"
        diags = verify_fused_groups(plan)
        assert "FX041" in codes(diags)
        fx041 = next(d for d in diags if d.code == "FX041")
        assert fx041.severity is Severity.ERROR
        assert "hours" in fx041.details["fields"]

    def test_unperturbed_member_in_fusion_is_fx042_error(self):
        # The planner cannot emit this shape (ensemble_key is None for
        # unperturbed jobs), so model a hand-built plan: swap one fused
        # member's spec for an unperturbed one after planning.
        plan = plan_campaign(_ensemble(members=2), workers=2)
        fused = next(j for j in plan.jobs if j.fused)
        fused.spec = JobSpec(dataset="demo", hours=1, variant="sequential",
                             perturb_seed=None, perturb_sigma=0.3)
        diags = [d for d in verify_fused_groups(plan) if d.code == "FX042"]
        assert diags and diags[0].severity is Severity.ERROR

    def test_zero_sigma_fusion_is_fx042_warning(self):
        plan = plan_campaign(_ensemble(sigma=0.0), workers=2)
        diags = [d for d in verify_fused_groups(plan) if d.code == "FX042"]
        assert diags and diags[0].severity is Severity.WARNING
        assert diags[0].details["sigma"] == 0.0


# ---------------------------------------------------------------------------
# FX043 — chain ordering and placement
# ---------------------------------------------------------------------------
class TestChainOrdering:
    def test_planner_output_is_clean(self):
        plan = plan_campaign(machine_grid(dataset="demo", hours=1),
                             workers=3)
        assert verify_chain_ordering(plan) == []

    def test_chain_spanning_workers_is_fx043(self):
        plan = plan_campaign(machine_grid(dataset="demo", hours=1),
                             workers=2)
        chain = next(c for c in plan.chains if len(c) > 1)
        plan.jobs[chain[-1]].worker = plan.jobs[chain[0]].worker + 1
        diags = verify_chain_ordering(plan)
        assert "FX043" in codes(diags)
        assert any("spans workers" in d.message for d in diags)

    def test_double_science_charge_is_fx043(self):
        plan = plan_campaign(machine_grid(dataset="demo", hours=1),
                             workers=1)
        chain = next(c for c in plan.chains if len(c) > 1)
        plan.jobs[chain[1]].science_charged = True
        diags = verify_chain_ordering(plan)
        assert any("already paid" in d.message for d in diags)

    def test_overlapping_placements_are_fx043(self):
        plan = plan_campaign(machine_grid(dataset="demo", hours=1),
                             workers=1)
        second = sorted(plan.jobs, key=lambda j: j.start_s)[1]
        second.start_s = 0.0
        diags = verify_chain_ordering(plan)
        assert any("overlap" in d.message for d in diags)


class TestIncrementalPlans:
    """Wave plans from the campaign service carry warm science keys."""

    def _uncharged_plan(self):
        plan = plan_campaign(machine_grid(dataset="demo", hours=1),
                             workers=2)
        for job in plan.jobs:
            job.science_charged = False  # science ran in an earlier wave
        return plan

    def test_uncharged_chain_is_lenient_without_warm_set(self):
        assert verify_chain_ordering(self._uncharged_plan()) == []

    def test_uncharged_cold_chain_is_fx043_with_warm_set(self):
        diags = verify_chain_ordering(self._uncharged_plan(),
                                      warm_science_keys=set())
        assert diags and all(d.code == "FX043" for d in diags)
        assert any("not warm" in d.message for d in diags)

    def test_uncharged_warm_chain_is_clean(self):
        plan = self._uncharged_plan()
        warm = {j.spec.science_key for j in plan.jobs}
        assert verify_chain_ordering(plan, warm_science_keys=warm) == []

    def test_verify_campaign_threads_warm_set(self):
        plan = self._uncharged_plan()
        specs = [j.spec for j in plan.jobs]
        cold = verify_campaign(specs, plan=plan, warm_science_keys=set())
        assert any(d.code == "FX043" for d in cold.diagnostics)
        warm = verify_campaign(
            specs, plan=plan,
            warm_science_keys={s.science_key for s in specs},
        )
        assert warm.diagnostics == []


# ---------------------------------------------------------------------------
# FX044 / FX045 — runner policy
# ---------------------------------------------------------------------------
class TestRunnerPolicy:
    @pytest.fixture()
    def plan(self):
        return plan_campaign(scaling_ladder(dataset="demo", hours=1,
                                            node_counts=(8, 64)),
                             workers=2)

    def test_defaults_are_clean(self, plan):
        assert verify_runner_policy(plan) == []

    def test_nonpositive_timeout_is_fx044(self, plan):
        assert codes(verify_runner_policy(plan, timeout=0.0)) == ["FX044"]

    def test_doomed_timeout_is_fx044_per_job(self, plan):
        diags = verify_runner_policy(plan, timeout=1e-6)
        assert codes(diags) == ["FX044"] * plan.n_jobs

    def test_generous_timeout_is_clean(self, plan):
        assert verify_runner_policy(plan, timeout=3600.0) == []

    def test_faults_without_retries_is_fx045_error(self, plan):
        policy = FaultPolicy(keys=tuple(j.key for j in plan.jobs))
        diags = verify_runner_policy(plan, retries=0, fault_policy=policy)
        assert any(d.code == "FX045" and d.severity is Severity.ERROR
                   for d in diags)

    def test_hang_process_no_timeout_is_fx045_error(self, plan):
        policy = FaultPolicy(keys=(plan.jobs[0].key,), mode="hang")
        diags = verify_runner_policy(plan, executor="process",
                                     fault_policy=policy)
        assert any("deadlock" in d.message for d in diags)
        # a timeout defuses the deadlock
        assert verify_runner_policy(plan, executor="process",
                                    fault_policy=policy,
                                    timeout=3600.0) == []

    def test_fault_after_episode_end_is_fx045_warning(self, plan):
        policy = FaultPolicy(keys=(plan.jobs[0].key,), after_hours=99)
        diags = verify_runner_policy(plan, fault_policy=policy)
        assert [d.severity for d in diags
                if d.code == "FX045"] == [Severity.WARNING]


# ---------------------------------------------------------------------------
# golden run — the shipped example's plan verifies clean
# ---------------------------------------------------------------------------
class TestGoldenExamplePlan:
    def test_campaign_sweep_example_plan_is_clean(self):
        # examples/campaign_sweep.py: 3 machines x 4 node counts, LA.
        specs = machine_grid(dataset="la",
                             machines=("t3e", "t3d", "paragon"),
                             node_counts=(8, 16, 32, 64), hours=2)
        assert len(specs) == 12
        report = verify_campaign(specs, workers=4, retries=2)
        assert report.diagnostics == []
        assert report.exit_code == 0
        assert report.summary["jobs"] == 12

    def test_ensemble_demo_plan_is_clean(self):
        report = verify_campaign(_ensemble(members=4), workers=4,
                                 timeout=3600.0, retries=2)
        assert report.diagnostics == []
        assert report.summary["fused_chains"] == 1
