"""The replay charges redistributions through the batched transfer API.

The hot-path overhaul switched the replay's communication charging from
``Transfer`` record lists to :class:`~repro.vm.transferbatch.TransferBatch`.
This re-runs the paper-configuration cross-check while spying on the
cluster's charging entry point, verifying both that the 77-step plan
still replays exactly (no FX030) and that every redistribution actually
went through the batched form.
"""

from repro.analyze import paper_configuration, run_crosscheck
from repro.vm.cluster import Cluster
from repro.vm.transferbatch import TransferBatch


def test_paper_replay_uses_batches_and_matches_plan(monkeypatch):
    charged = []
    original = Cluster.charge_communication

    def spy(self, name, transfers, node_ids=None):
        charged.append((name, type(transfers)))
        return original(self, name, transfers, node_ids=node_ids)

    monkeypatch.setattr(Cluster, "charge_communication", spy)

    diags, info = run_crosscheck(paper_configuration())

    assert diags == []
    assert info["predicted_comm_steps"] == 77
    assert info["executed_comm_steps"] == 77
    redistributions = [(n, t) for n, t in charged if "->" in n]
    assert redistributions, "replay charged no redistributions"
    assert all(t is TransferBatch for _, t in redistributions), (
        "non-batched redistribution charges: "
        f"{[(n, t.__name__) for n, t in redistributions if t is not TransferBatch]}"
    )
