"""Policy tests over the checked-in determinism allowlist.

The always-on service legitimately reads wall clocks and sockets, and
``.repro-determinism-allow`` audits exactly those reads.  What must
*not* happen is allowlist creep into the simulation side: the numerics
(:mod:`repro.model`, :mod:`repro.chemistry`, ...) stay bitwise
deterministic with no new exceptions, and the scanner itself proves the
whole tree clean under the checked-in file.
"""

from pathlib import Path

from repro.analyze import load_allowlist, scan_tree

REPO = Path(__file__).resolve().parents[2]
ALLOWLIST = REPO / ".repro-determinism-allow"

#: Simulation-side packages: any new allowlist entry here is a red
#: flag — the numerics must not grow audited nondeterminism.
SIM_PACKAGES = (
    "repro/model/", "repro/chemistry/", "repro/datasets/",
    "repro/transport/", "repro/grid/", "repro/foreign/", "repro/vm/",
)

#: The audited sim-side exceptions (frozen): the chemistry backend
#: switch (cannot change any result) and the tile pool's busy-time
#: accounting (observational only — tile spans are fixed by
#: ``tile_spans()`` before any clock is read, so timing never selects
#: work or touches a numeric output).  Extending this set requires the
#: same audit: prove the read cannot reach science state.
FROZEN_SIM_ENTRIES = {
    ("FX052", "repro/chemistry/cfused.py", "REPRO_CHEM_NO_C"),
    ("FX051", "repro/chemistry/tiling.py", "perf_counter"),
}


def test_sim_side_gained_no_new_allowlist_entries():
    entries = load_allowlist(ALLOWLIST)
    sim = {
        (e.code, e.path, e.pattern)
        for e in entries
        if any(e.path.startswith(p) for p in SIM_PACKAGES)
    }
    assert sim == FROZEN_SIM_ENTRIES, (
        "simulation-side allowlist entries changed; the numerics must "
        "stay deterministic without new audited exceptions"
    )


def test_service_wall_clock_reads_are_audited():
    entries = load_allowlist(ALLOWLIST)
    service = {e.path: e for e in entries
               if e.path.startswith("repro/service/")}
    assert "repro/service/daemon.py" in service
    assert "repro/service/client.py" in service
    for entry in service.values():
        assert entry.code == "FX051"  # wall-clock reads only
        assert len(entry.rationale) > 20  # a real justification


def test_every_entry_has_a_rationale():
    for entry in load_allowlist(ALLOWLIST):
        assert entry.rationale.strip(), (
            f"allowlist line {entry.lineno} has no rationale"
        )


def test_tree_scans_clean_under_checked_in_allowlist():
    report = scan_tree(REPO / "src" / "repro",
                       allowlist=load_allowlist(ALLOWLIST))
    assert report.exit_code == 0
    assert not report.diagnostics, [
        f"{d.code} {d.message}" for d in report.diagnostics
    ]
