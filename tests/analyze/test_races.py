"""Task-graph race detection (FX01x): the stage x item dependency DAG."""

import pytest

from repro.analyze import (
    ArrayDecl,
    FxProgram,
    PhaseDecl,
    TaskDecl,
    build_program,
    check_races,
)
from repro.analyze.races import overlappable_pairs, sanctioned_vars, task_graph
from repro.fx import Distribution
from repro.vm import get_machine

T3E = get_machine("t3e")
SHAPE = (35, 5, 700)

D_REPL = Distribution.replicated(3)
D_TRANS = Distribution.block(3, 1)
D_CHEM = Distribution.block(3, 2)


def program(tasks, phases=(), arrays=None, nprocs=16):
    return FxProgram(
        name="fixture",
        machine=T3E,
        nprocs=nprocs,
        arrays=arrays if arrays is not None
        else [ArrayDecl("conc", SHAPE, initial=D_REPL)],
        tasks=list(tasks),
        phases=list(phases),
    )


def codes(diags):
    return [d.code for d in diags]


class TestTaskGraph:
    def test_dag_shape(self):
        prog = program([TaskDecl("a", 1), TaskDecl("b", 1)])
        deps = task_graph(prog, nitems=2)
        assert deps[("a", 0)] == set()
        assert deps[("a", 1)] == {("a", 0)}
        assert deps[("b", 0)] == {("a", 0)}
        assert deps[("b", 1)] == {("b", 0), ("a", 1)}

    def test_adjacent_stages_overlap(self):
        prog = program([TaskDecl("a", 1), TaskDecl("b", 1)])
        assert ("a", "b") in overlappable_pairs(prog)

    def test_single_stage_never_overlaps_itself(self):
        prog = program([TaskDecl("only", 4)])
        assert overlappable_pairs(prog) == set()

    def test_sanctioned_chain_must_be_unbroken(self):
        prog = program([
            TaskDecl("a", 1, handoff=frozenset({"x", "y"})),
            TaskDecl("b", 1, handoff=frozenset({"x"})),
            TaskDecl("c", 1),
        ])
        assert sanctioned_vars(prog, 0, 1) == {"x", "y"}
        assert sanctioned_vars(prog, 0, 2) == {"x"}


class TestStageConflicts:
    def test_write_write_race_is_fx010(self):
        prog = program([
            TaskDecl("input", 1, writes=frozenset({"conc"})),
            TaskDecl("main", 14, writes=frozenset({"conc"})),
        ])
        diags = check_races(prog)
        assert "FX010" in codes(diags)
        [d] = [d for d in diags if d.code == "FX010"]
        assert d.details["variables"] == ["conc"]

    def test_read_write_race_is_fx011(self):
        prog = program([
            TaskDecl("main", 14, writes=frozenset({"snapshot"})),
            TaskDecl("output", 1, reads=frozenset({"snapshot"})),
        ])
        assert "FX011" in codes(check_races(prog))

    def test_handoff_sanctions_the_flow(self):
        """The producer/consumer pattern with a declared handoff is clean."""
        prog = program([
            TaskDecl("main", 14, writes=frozenset({"snapshot"}),
                     handoff=frozenset({"snapshot"})),
            TaskDecl("output", 1, reads=frozenset({"snapshot"})),
        ])
        assert check_races(prog) == []

    def test_disjoint_variables_are_clean(self):
        prog = program([
            TaskDecl("a", 1, reads=frozenset({"x"}), writes=frozenset({"y"})),
            TaskDecl("b", 1, reads=frozenset({"p"}), writes=frozenset({"q"})),
        ])
        assert check_races(prog) == []


class TestStaleReads:
    def test_compute_under_wrong_layout_is_fx012(self):
        """Two stages mutating conc for adjacent hours without a transfer:
        chemistry runs while the array is still in the transport layout."""
        prog = program([], phases=[
            PhaseDecl(op="redistribute", name="->trans", array="conc",
                      target=D_TRANS),
            PhaseDecl(op="compute", name="transport", array="conc",
                      layout=D_TRANS),
            PhaseDecl(op="compute", name="chemistry", array="conc",
                      layout=D_CHEM),
        ])
        diags = check_races(prog)
        assert codes(diags) == ["FX012"]
        [d] = diags
        assert d.details["required"] != d.details["current"]

    def test_correct_sequence_is_clean(self):
        prog = program([], phases=[
            PhaseDecl(op="redistribute", name="->trans", array="conc",
                      target=D_TRANS),
            PhaseDecl(op="compute", name="transport", array="conc",
                      layout=D_TRANS),
            PhaseDecl(op="redistribute", name="->chem", array="conc",
                      target=D_CHEM),
            PhaseDecl(op="compute", name="chemistry", array="conc",
                      layout=D_CHEM),
        ])
        assert check_races(prog) == []


@pytest.mark.parametrize("driver", ["sequential", "dataparallel",
                                    "taskparallel"])
def test_shipped_drivers_are_race_free(driver):
    prog = build_program(driver, dataset="la", machine="t3e", nprocs=64)
    assert check_races(prog) == []
