"""FX06x: calibration-store lint (drift, fallbacks, integrity)."""

from repro.analyze.tune import lint_tune_store
from repro.perfmodel.calibrate import CalibratedModel, RefitResult
from repro.tune import (
    CalibrationStore,
    Observation,
    observations_from_tracer,
    traced_replay,
)
from repro.vm.machine import get_machine


def drift_obs(source, observed_s=1.0, predicted_s=1.25):
    """Same phase key, distinct content (source) per sample."""
    return Observation(dataset="demo", machine="t3e", nprocs=4,
                       variant="data", cores_per_job=1, phase="chemistry",
                       observed_s=observed_s, predicted_s=predicted_s,
                       source=source)


def job_obs(observed_s, ops):
    return Observation(dataset="demo", machine="host", nprocs=1,
                       variant="sequential", cores_per_job=1, phase="job",
                       observed_s=observed_s, ops=ops)


def codes(report):
    return [d.code for d in report.diagnostics]


def test_empty_store_is_clean(tmp_path):
    report = lint_tune_store(str(tmp_path / "s"))
    assert report.diagnostics == []
    assert report.exit_code == 0
    assert report.program == f"tune-store:{tmp_path / 's'}"
    assert report.summary["observations"] == 0
    assert report.summary["fingerprint"] == ""


def test_fx061_fallback_is_informational(tmp_path):
    store = CalibrationStore(tmp_path / "s")
    store.add(job_obs(2.0, ops=1400.0))
    report = lint_tune_store(store)
    assert "FX061" in codes(report)
    assert report.exit_code == 0  # info never fails the build
    fx061 = [d for d in report.diagnostics if d.code == "FX061"]
    assert any("host_ops_per_second" in d.message for d in fx061)


def test_fx060_drift_respects_the_band_boundary(tmp_path):
    store = CalibrationStore(tmp_path / "s")
    store.add_many([drift_obs(f"s{i}") for i in range(3)])
    drifted = lint_tune_store(store, band=0.2)
    assert "FX060" in codes(drifted)
    assert drifted.exit_code == 1
    fx060 = [d for d in drifted.diagnostics if d.code == "FX060"][0]
    assert fx060.details["median_error"] == 0.25
    # the exact same store is in band at 0.25: the boundary is exclusive
    on_band = lint_tune_store(store, band=0.25)
    assert "FX060" not in codes(on_band)


def test_fx062_outlier_dominated_quantity(tmp_path, monkeypatch):
    store = CalibrationStore(tmp_path / "s")
    store.add(job_obs(1.0, ops=700.0))

    def fake_refit(observations, *, min_samples):
        return RefitResult(CalibratedModel(), notes=[
            {"kind": "outliers", "quantity": "host_ops_per_second",
             "samples": 4, "rejected": 2},
        ])

    monkeypatch.setattr("repro.analyze.tune.refit_observations", fake_refit)
    report = lint_tune_store(store)
    assert "FX062" in codes(report)
    assert report.exit_code == 1

    def minority_refit(observations, *, min_samples):
        return RefitResult(CalibratedModel(), notes=[
            {"kind": "outliers", "quantity": "host_ops_per_second",
             "samples": 4, "rejected": 1},
        ])

    monkeypatch.setattr(
        "repro.analyze.tune.refit_observations", minority_refit)
    assert "FX062" not in codes(lint_tune_store(store))


def test_fx063_store_integrity_is_an_error(tmp_path):
    store = CalibrationStore(tmp_path / "s")
    store.add(job_obs(1.0, ops=700.0))
    with store.journal_path.open("a") as fh:
        fh.write("not json\n")
    store.add(job_obs(2.0, ops=1400.0))  # interior, not a torn tail
    report = lint_tune_store(CalibrationStore(tmp_path / "s"))
    assert "FX063" in codes(report)
    assert report.exit_code == 2
    assert report.summary["errors"] == 1
    assert report.summary["observations"] == 2  # good records still lint


def test_fx064_stale_decision_generation(tmp_path):
    store = CalibrationStore(tmp_path / "s")
    store.add(job_obs(1.0, ops=700.0))
    store.record_decision({"key": "k", "generation": 0})
    report = lint_tune_store(store)
    assert "FX064" in codes(report)
    assert report.exit_code == 0
    # a decision made at the current generation is fresh
    store.record_decision({"key": "k", "generation": 1})
    assert "FX064" not in codes(lint_tune_store(store))


def test_perturbed_profile_is_flagged_as_drift(tmp_path, tiny_trace):
    """The acceptance scenario: a skewed host profile drifts (FX060)."""
    tracer, _ = traced_replay(tiny_trace, get_machine("t3e"), 4)
    store = CalibrationStore(tmp_path / "s")
    store.add_many(observations_from_tracer(
        tracer, dataset="tiny", machine="t3e", nprocs=4, trace=tiny_trace,
        machine_spec=get_machine("t3e").scaled(4.0, 4.0), timestamp="t"))
    report = lint_tune_store(store, min_samples=1)
    assert "FX060" in codes(report)
    assert report.exit_code == 1
    # predictions from the true profile sit inside the band
    clean = CalibrationStore(tmp_path / "c")
    clean.add_many(observations_from_tracer(
        tracer, dataset="tiny", machine="t3e", nprocs=4, trace=tiny_trace,
        timestamp="t"))
    assert "FX060" not in codes(lint_tune_store(clean, min_samples=1))
