"""Static plan vs executed trace (FX030), and the paper's 77 steps."""

import pytest

from repro.analyze import (
    analyze_program,
    build_program,
    crosscheck_spans,
    executed_comm_steps,
    paper_configuration,
    run_crosscheck,
    synthetic_trace,
)
from repro.observe.tracer import Span


class TestPaperConfiguration:
    def test_predicts_77_communication_steps(self):
        """LA / T3E / 64 nodes / 4h x 6 steps: 1 + 4*(3*6) + 4 = 77."""
        plan = paper_configuration().comm_plan()
        assert len(plan) == 77

    def test_replay_matches_the_plan_exactly(self):
        diags, info = run_crosscheck(paper_configuration())
        assert diags == []
        assert info["predicted_comm_steps"] == 77
        assert info["executed_comm_steps"] == 77

    def test_step_name_composition(self):
        """Identity redistributions at step boundaries are elided, so the
        24 main-loop steps charge 3 redistributions each, plus the run's
        initial D_Repl->D_Trans and one output gather per hour."""
        names = [s.name for s in paper_configuration().comm_plan()]
        assert names.count("D_Repl->D_Trans") == 1 + 4 * 6
        assert names.count("D_Trans->D_Chem") == 4 * 6
        assert names.count("D_Chem->D_Repl") == 4 * 6
        assert names.count("gather:outputhour") == 4
        assert len(names) == 77


@pytest.mark.parametrize("driver", ["sequential", "dataparallel",
                                    "taskparallel"])
def test_shipped_drivers_crosscheck_clean(driver):
    prog = build_program(driver, dataset="demo", machine="t3e",
                         nprocs=16, hours=2, steps_per_hour=2)
    report = analyze_program(prog, crosscheck=True)
    assert not [d for d in report.diagnostics if d.code == "FX030"]
    assert report.summary["predicted_comm_steps"] == \
        report.summary["executed_comm_steps"]


class TestSpanComparison:
    def comm(self, name, start, end):
        return Span(name=name, kind="comm", start=start, end=end, node=0)

    def test_collapses_per_node_spans(self):
        spans = [
            Span(name="x", kind="comm", start=0.0, end=1.0, node=n)
            for n in range(4)
        ]
        assert executed_comm_steps(spans) == ["x"]

    def test_repeated_step_at_different_times_kept(self):
        spans = [self.comm("x", 0.0, 1.0), self.comm("x", 2.0, 3.0)]
        assert executed_comm_steps(spans) == ["x", "x"]

    def test_missing_step_is_fx030(self):
        prog = build_program("dataparallel", dataset="demo", nprocs=8,
                             hours=1, steps_per_hour=1)
        predicted = [s.name for s in prog.comm_plan()]
        spans = [self.comm(name, float(i), float(i) + 0.5)
                 for i, name in enumerate(predicted[:-1])]
        diags, info = crosscheck_spans(prog, spans)
        assert [d.code for d in diags] == ["FX030"]
        assert info["executed_comm_steps"] == len(predicted) - 1

    def test_wrong_order_is_fx030(self):
        prog = build_program("dataparallel", dataset="demo", nprocs=8,
                             hours=1, steps_per_hour=1)
        predicted = [s.name for s in prog.comm_plan()]
        swapped = [predicted[1], predicted[0], *predicted[2:]]
        spans = [self.comm(name, float(i), float(i) + 0.5)
                 for i, name in enumerate(swapped)]
        diags, _ = crosscheck_spans(prog, spans)
        assert [d.code for d in diags] == ["FX030"]
        assert diags[0].details["first_divergence"]["index"] == 0

    def test_matching_spans_are_clean(self):
        prog = build_program("dataparallel", dataset="demo", nprocs=8,
                             hours=1, steps_per_hour=1)
        spans = [self.comm(s.name, float(i), float(i) + 0.5)
                 for i, s in enumerate(prog.comm_plan())]
        diags, _ = crosscheck_spans(prog, spans)
        assert diags == []


def test_synthetic_trace_structure():
    trace = synthetic_trace((35, 4, 150), hours=2, steps_per_hour=3)
    assert trace.nhours == 2
    assert all(h.nsteps == 3 for h in trace.hours)
    assert all(len(h.steps) == 3 for h in trace.hours)
