"""The registered driver programs: registry, shapes, declaration sync."""

import pytest

from repro.analyze import available_programs, build_program, register_program
from repro.analyze.programs import DATASET_SHAPES, PHASE_IO
from repro.fx.runtime import FxRuntime
from repro.model.dataparallel import declare_airshed_phases
from repro.model.taskparallel import STAGE_IO
from repro.vm import get_machine


class TestRegistry:
    def test_shipped_drivers_registered(self):
        assert {"sequential", "dataparallel", "taskparallel"} <= \
            set(available_programs())

    def test_unknown_driver_raises(self):
        with pytest.raises(KeyError, match="unknown driver"):
            build_program("mpi")

    def test_register_and_build(self):
        def builder(**kwargs):
            return build_program("sequential", **kwargs)

        register_program("alias-sequential", builder)
        try:
            prog = build_program("alias-sequential", dataset="demo", hours=1)
            assert prog.meta["driver"] == "sequential"
        finally:
            from repro.analyze import programs
            del programs._REGISTRY["alias-sequential"]

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            build_program("dataparallel", dataset="mars")


def test_demo_shape_matches_the_real_dataset():
    """The static shape table must track the actual generators."""
    from repro.datasets import DEMO_SPEC

    dataset = DEMO_SPEC.build()
    assert DATASET_SHAPES["demo"] == dataset.shape


def test_phase_io_mirrors_runtime_declarations():
    """PHASE_IO (the analyzer's table) and declare_airshed_phases (what
    the drivers register on their FxRuntime) must stay in sync."""
    rt = FxRuntime(get_machine("t3e"), 4)
    declare_airshed_phases(rt)
    assert set(rt.phase_decls) == set(PHASE_IO)
    for name, decl in rt.phase_decls.items():
        assert decl.reads == PHASE_IO[name]["reads"], name
        assert decl.writes == PHASE_IO[name]["writes"], name


def test_taskparallel_program_mirrors_stage_io():
    prog = build_program("taskparallel", dataset="la", nprocs=64)
    assert [t.name for t in prog.tasks] == ["input", "main", "output"]
    for task in prog.tasks:
        assert task.reads == STAGE_IO[task.name]["reads"]
        assert task.writes == STAGE_IO[task.name]["writes"]
        assert task.handoff == STAGE_IO[task.name]["handoff"]


def test_taskparallel_node_split():
    prog = build_program("taskparallel", dataset="la", nprocs=64, io_nodes=1)
    sizes = {t.name: t.size for t in prog.tasks}
    assert sizes == {"input": 1, "main": 62, "output": 1}
