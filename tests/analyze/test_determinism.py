"""FX05x determinism sanitizer: AST scan, allowlist, repo-wide gate."""

import textwrap
from pathlib import Path

import pytest

from repro.analyze import (
    ALLOWLIST_FILENAME,
    Severity,
    load_allowlist,
    scan_source,
    scan_tree,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


def scan(source):
    return scan_source("pkg/mod.py", textwrap.dedent(source))


def codes(diags):
    return sorted(d.code for d in diags)


# ---------------------------------------------------------------------------
# FX050 — unseeded RNG
# ---------------------------------------------------------------------------
class TestUnseededRandom:
    def test_global_random_call_is_fx050(self):
        diags = scan("""\
            import random
            def jitter():
                return random.random()
        """)
        assert codes(diags) == ["FX050"]
        assert diags[0].severity is Severity.ERROR
        assert diags[0].location == "pkg/mod.py:3"

    def test_aliased_numpy_global_rng_is_fx050(self):
        diags = scan("""\
            import numpy as np
            noise = np.random.rand(4)
        """)
        assert codes(diags) == ["FX050"]
        assert "legacy global" in diags[0].message

    def test_unseeded_default_rng_is_fx050(self):
        assert codes(scan("""\
            from numpy.random import default_rng
            rng = default_rng()
        """)) == ["FX050"]

    def test_seeded_default_rng_is_clean(self):
        assert scan("""\
            import numpy as np
            def member(seed):
                return np.random.default_rng(seed).normal()
        """) == []

    def test_seeded_random_random_instance_is_clean(self):
        assert scan("""\
            import random
            rng = random.Random(1234)
        """) == []

    def test_system_random_is_always_fx050(self):
        assert codes(scan("""\
            import random
            rng = random.SystemRandom(0)
        """)) == ["FX050"]


# ---------------------------------------------------------------------------
# FX051 / FX052 — wall clock and environment
# ---------------------------------------------------------------------------
class TestClockAndEnv:
    def test_time_time_call_is_fx051(self):
        diags = scan("""\
            import time
            t0 = time.time()
        """)
        assert codes(diags) == ["FX051"]
        assert diags[0].severity is Severity.WARNING

    def test_clock_passed_as_value_is_fx051(self):
        assert codes(scan("""\
            import time
            def run(clock=time.monotonic):
                return clock()
        """)) == ["FX051"]

    def test_time_sleep_is_exempt(self):
        assert scan("""\
            import time
            time.sleep(0.1)
        """) == []

    def test_os_environ_get_is_one_fx052(self):
        diags = scan("""\
            import os
            debug = os.environ.get("DEBUG")
        """)
        # the call consumes its whole attribute chain: one finding, not
        # one for the call plus one for the bare os.environ read.
        assert codes(diags) == ["FX052"]

    def test_os_getenv_and_subscript_are_fx052(self):
        assert codes(scan("""\
            import os
            a = os.getenv("A")
            b = os.environ["B"]
        """)) == ["FX052", "FX052"]


# ---------------------------------------------------------------------------
# FX053 — iteration-order dependence
# ---------------------------------------------------------------------------
class TestIterationOrder:
    def test_unsorted_dumps_in_hashing_function_is_fx053(self):
        diags = scan("""\
            import hashlib, json
            def digest(fields):
                payload = json.dumps(fields)
                return hashlib.sha256(payload.encode()).hexdigest()
        """)
        assert codes(diags) == ["FX053"]
        assert diags[0].severity is Severity.ERROR

    def test_sorted_dumps_in_hashing_function_is_clean(self):
        assert scan("""\
            import hashlib, json
            def digest(fields):
                payload = json.dumps(fields, sort_keys=True)
                return hashlib.sha256(payload.encode()).hexdigest()
        """) == []

    def test_unsorted_dumps_without_hashing_is_clean(self):
        assert scan("""\
            import json
            def pretty(fields):
                return json.dumps(fields)
        """) == []

    def test_set_iteration_is_fx053(self):
        assert codes(scan("""\
            def spans(names):
                for n in set(names):
                    emit(n)
        """)) == ["FX053"]

    def test_sorted_set_iteration_is_clean(self):
        assert scan("""\
            def spans(names):
                for n in sorted(set(names)):
                    emit(n)
        """) == []

    def test_set_union_comprehension_is_fx053(self):
        assert codes(scan("""\
            def merged(a, b):
                return [k for k in set(a) | set(b)]
        """)) == ["FX053"]


# ---------------------------------------------------------------------------
# FX054 — unguarded shared state on pool threads
# ---------------------------------------------------------------------------
THREADED = """\
from concurrent.futures import ThreadPoolExecutor

class Runner:
    def run(self, jobs):
        with ThreadPoolExecutor(4) as pool:
            for job in jobs:
                pool.submit(worker, job)

def worker(job):
%s
"""


def scan_worker(body):
    body = textwrap.indent(textwrap.dedent(body), "    ")
    return scan_source("pkg/mod.py", THREADED % body)


class TestThreadSafety:
    def test_unguarded_shared_dict_write_is_fx054(self):
        diags = scan_worker("""\
            results[job.key] = job.run()
        """)
        assert codes(diags) == ["FX054"]
        assert diags[0].severity is Severity.ERROR

    def test_lock_guarded_write_is_clean(self):
        assert scan_worker("""\
            with state_lock:
                results[job.key] = job.run()
        """) == []

    def test_local_dict_write_is_clean(self):
        assert scan_worker("""\
            results = {}
            results[job.key] = job.run()
        """) == []

    def test_mutating_call_on_shared_list_is_fx054(self):
        assert codes(scan_worker("""\
            done.append(job.key)
        """)) == ["FX054"]

    def test_transitive_callee_is_scanned(self):
        diags = scan("""\
            from concurrent.futures import ThreadPoolExecutor

            def record(job):
                totals[job.key] = 1

            def worker(job):
                record(job)

            def run(jobs):
                with ThreadPoolExecutor(4) as pool:
                    for job in jobs:
                        pool.submit(worker, job)
        """)
        assert codes(diags) == ["FX054"]
        assert diags[0].details["function"] == "record"

    def test_no_thread_roots_means_no_fx054(self):
        assert scan("""\
            def worker(job):
                results[job.key] = job.run()
        """) == []


# ---------------------------------------------------------------------------
# allowlist mechanics
# ---------------------------------------------------------------------------
class TestAllowlist:
    def make(self, tmp_path, text):
        f = tmp_path / ALLOWLIST_FILENAME
        f.write_text(textwrap.dedent(text))
        return load_allowlist(f)

    def test_parse_skips_comments_and_blanks(self, tmp_path):
        entries = self.make(tmp_path, """\
            # header comment

            FX051 pkg/mod.py time.time -- audited wall clock
        """)
        assert len(entries) == 1
        assert entries[0].code == "FX051"
        assert entries[0].rationale == "audited wall clock"

    def test_missing_rationale_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="malformed"):
            self.make(tmp_path, "FX051 pkg/mod.py time.time\n")

    def test_matching_entry_suppresses_finding(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("import time\nt = time.time()\n")
        entries = self.make(
            tmp_path, "FX051 pkg/mod.py time.time -- audited\n")
        report = scan_tree(pkg, allowlist=entries)
        assert report.diagnostics == []
        assert report.summary["allowlisted"] == 1
        assert entries[0].matched == 1

    def test_stale_entry_is_fx055(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("x = 1\n")
        entries = self.make(
            tmp_path, "FX050 pkg/other.py random.random -- gone\n")
        report = scan_tree(pkg, allowlist=entries)
        assert codes(report.diagnostics) == ["FX055"]

    def test_wildcard_pattern_matches_any_snippet(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("import time\nt = time.time()\n")
        entries = self.make(tmp_path, "FX051 pkg/mod.py * -- audited\n")
        assert scan_tree(pkg, allowlist=entries).diagnostics == []


# ---------------------------------------------------------------------------
# the repo-wide gate (the same check CI runs)
# ---------------------------------------------------------------------------
class TestRepoIsClean:
    def test_source_tree_passes_with_committed_allowlist(self):
        allowlist = load_allowlist(REPO_ROOT / ALLOWLIST_FILENAME)
        report = scan_tree(PACKAGE_ROOT, allowlist=allowlist)
        assert report.diagnostics == [], report.render()
        for entry in allowlist:
            assert entry.matched > 0, f"stale allowlist entry: {entry}"

    def test_seeded_fx050_injection_is_caught(self, tmp_path):
        # copy a real module and plant an unseeded RNG call in it — the
        # gate that must fail if someone lands this by accident.
        victim = (PACKAGE_ROOT / "model" / "ensemble.py").read_text()
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "ensemble.py").write_text(
            victim + "\n\ndef _jitter():\n"
                     "    import random\n"
                     "    return random.random()\n")
        report = scan_tree(pkg)
        assert codes(report.diagnostics) == ["FX050"]
        assert report.exit_code == 2
