"""Directive-consistency pass (FX00x): fixtures that inject each defect."""

import pytest

from repro.analyze import (
    ArrayDecl,
    FxProgram,
    PhaseDecl,
    TaskDecl,
    build_program,
    check_directives,
)
from repro.analyze.diagnostics import Severity
from repro.fx import Distribution
from repro.vm import get_machine

T3E = get_machine("t3e")
SHAPE = (35, 5, 700)

D_REPL = Distribution.replicated(3)
D_TRANS = Distribution.block(3, 1)
D_CHEM = Distribution.block(3, 2)


def program(phases, arrays=None, tasks=None, nprocs=4):
    return FxProgram(
        name="fixture",
        machine=T3E,
        nprocs=nprocs,
        arrays=arrays if arrays is not None
        else [ArrayDecl("conc", SHAPE, initial=D_REPL)],
        tasks=tasks or [],
        phases=phases,
    )


def codes(diags):
    return [d.code for d in diags]


class TestLayoutMismatch:
    def test_ndim_mismatch_is_fx001(self):
        bad = Distribution.block(2, 0)  # 2-d directive on a 3-d array
        diags = check_directives(program([
            PhaseDecl(op="redistribute", name="->bad", array="conc",
                      target=bad),
        ]))
        assert "FX001" in codes(diags)
        [d] = [d for d in diags if d.code == "FX001"]
        assert d.severity is Severity.ERROR
        assert "3-d" in d.message

    def test_undeclared_array_is_fx001(self):
        diags = check_directives(program([
            PhaseDecl(op="redistribute", name="->trans", array="ghost",
                      target=D_TRANS),
        ]))
        assert "FX001" in codes(diags)

    def test_compute_layout_rank_mismatch_is_fx001(self):
        diags = check_directives(program([
            PhaseDecl(op="compute", name="transport", array="conc",
                      layout=Distribution.block(2, 0)),
        ]))
        assert "FX001" in codes(diags)


class TestRedundantRedistribution:
    def test_back_to_back_unread_is_fx002(self):
        diags = check_directives(program([
            PhaseDecl(op="redistribute", name="->trans", array="conc",
                      target=D_TRANS),
            PhaseDecl(op="redistribute", name="->chem", array="conc",
                      target=D_CHEM),
            PhaseDecl(op="compute", name="chemistry", array="conc",
                      layout=D_CHEM),
        ]))
        assert codes(diags) == ["FX002"]

    def test_intervening_read_is_clean(self):
        diags = check_directives(program([
            PhaseDecl(op="redistribute", name="->trans", array="conc",
                      target=D_TRANS),
            PhaseDecl(op="compute", name="transport", array="conc",
                      layout=D_TRANS),
            PhaseDecl(op="redistribute", name="->chem", array="conc",
                      target=D_CHEM),
            PhaseDecl(op="compute", name="chemistry", array="conc",
                      layout=D_CHEM),
        ]))
        assert diags == []

    def test_identity_redistribution_elided(self):
        """Target == current directive compiles to nothing: no FX002."""
        diags = check_directives(program([
            PhaseDecl(op="redistribute", name="->repl", array="conc",
                      target=D_REPL),
            PhaseDecl(op="redistribute", name="->trans", array="conc",
                      target=D_TRANS),
            PhaseDecl(op="compute", name="transport", array="conc",
                      layout=D_TRANS),
        ]))
        assert diags == []


class TestDeadLayout:
    def test_trailing_unread_layout_is_fx003(self):
        diags = check_directives(program([
            PhaseDecl(op="redistribute", name="->trans", array="conc",
                      target=D_TRANS),
        ]))
        assert codes(diags) == ["FX003"]


class TestSubgroupViolations:
    def test_oversubscribed_tasks_is_fx004(self):
        diags = check_directives(program(
            [],
            tasks=[TaskDecl("input", 4), TaskDecl("main", 14),
                   TaskDecl("output", 4)],
            nprocs=16,
        ))
        assert "FX004" in codes(diags)

    def test_empty_task_region_is_fx004(self):
        diags = check_directives(program(
            [], tasks=[TaskDecl("main", 0)], nprocs=16,
        ))
        assert "FX004" in codes(diags)

    def test_zero_node_machine_is_fx004(self):
        diags = check_directives(program([], nprocs=0))
        assert "FX004" in codes(diags)

    def test_array_on_undeclared_task_is_fx004(self):
        diags = check_directives(program(
            [],
            arrays=[ArrayDecl("conc", SHAPE, group="phantom")],
        ))
        assert "FX004" in codes(diags)

    def test_taskparallel_too_few_nodes_flagged(self):
        """The shipped builder with nprocs=2 leaves main with 0 nodes."""
        prog = build_program("taskparallel", dataset="la", nprocs=2)
        assert "FX004" in codes(check_directives(prog))


class TestIdleNodes:
    def test_small_extent_over_large_group_is_fx005(self):
        diags = check_directives(program([
            PhaseDecl(op="redistribute", name="->trans", array="conc",
                      target=D_TRANS),
            PhaseDecl(op="compute", name="transport", array="conc",
                      layout=D_TRANS),
        ], nprocs=64))
        assert "FX005" in codes(diags)
        [d] = [d for d in diags if d.code == "FX005"]
        assert d.severity is Severity.INFO
        assert d.details["extent"] == 5

    def test_reported_once_per_layout(self):
        phases = []
        for _ in range(3):
            phases.append(PhaseDecl(op="redistribute", name="->trans",
                                    array="conc", target=D_TRANS))
            phases.append(PhaseDecl(op="compute", name="transport",
                                    array="conc", layout=D_TRANS))
            phases.append(PhaseDecl(op="redistribute", name="->repl",
                                    array="conc", target=D_REPL))
            phases.append(PhaseDecl(op="compute", name="aerosol",
                                    array="conc", layout=D_REPL))
        diags = check_directives(program(phases, nprocs=64))
        assert codes(diags).count("FX005") == 1


@pytest.mark.parametrize("driver", ["sequential", "dataparallel",
                                    "taskparallel"])
def test_shipped_drivers_have_no_directive_errors(driver):
    prog = build_program(driver, dataset="la", machine="t3e", nprocs=64)
    diags = check_directives(prog)
    assert all(d.severity is not Severity.ERROR for d in diags), codes(diags)
