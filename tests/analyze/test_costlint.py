"""Redistribution-cost lint (FX02x): budgets and cheaper-order hints."""

from repro.analyze import (
    ArrayDecl,
    CostBudget,
    FxProgram,
    PhaseDecl,
    build_program,
    cost_table,
    lint_costs,
)
from repro.fx import Distribution
from repro.perfmodel.communication import ArrayGeometry, CommunicationModel
from repro.vm import get_machine

T3E = get_machine("t3e")
SHAPE = (35, 5, 700)

D_REPL = Distribution.replicated(3)
D_TRANS = Distribution.block(3, 1)
D_CHEM = Distribution.block(3, 2)


def airshed_cycle(nprocs=64):
    """The paper's canonical D_Repl->D_Trans->D_Chem->D_Repl cycle."""
    return FxProgram(
        name="cycle",
        machine=T3E,
        nprocs=nprocs,
        arrays=[ArrayDecl("conc", SHAPE, initial=D_REPL)],
        phases=[
            PhaseDecl(op="redistribute", name="->trans", array="conc",
                      target=D_TRANS),
            PhaseDecl(op="compute", name="transport", array="conc",
                      layout=D_TRANS),
            PhaseDecl(op="redistribute", name="->chem", array="conc",
                      target=D_CHEM),
            PhaseDecl(op="compute", name="chemistry", array="conc",
                      layout=D_CHEM),
            PhaseDecl(op="redistribute", name="->repl", array="conc",
                      target=D_REPL),
            PhaseDecl(op="compute", name="aerosol", array="conc",
                      layout=D_REPL),
        ],
    )


def codes(diags):
    return [d.code for d in diags]


class TestCostTable:
    def test_cycle_has_three_priced_steps(self):
        table = cost_table(airshed_cycle())
        assert set(table) == {
            "D_Repl->D_Trans", "D_Trans->D_Chem", "D_Chem->D_Repl",
        }
        for row in table.values():
            assert row["occurrences"] == 1
            assert row["seconds"] > 0.0

    def test_allgather_is_the_most_expensive_step(self):
        """Section 4.2: D_Chem->D_Repl dominates (receiver-bound all-gather)."""
        table = cost_table(airshed_cycle())
        gather = table["D_Chem->D_Repl"]
        assert gather["network_bytes"] > table["D_Trans->D_Chem"]["network_bytes"]
        assert gather["seconds"] == max(r["seconds"] for r in table.values())

    def test_closed_form_annotation_matches_perfmodel(self):
        table = cost_table(airshed_cycle(nprocs=64))
        model = CommunicationModel(T3E, ArrayGeometry(*SHAPE, wordsize=8))
        for name in ("D_Trans->D_Chem", "D_Chem->D_Repl"):
            assert table[name]["closed_form_seconds"] == model.cost(name, 64)


class TestBudget:
    def test_no_budget_no_fx020(self):
        diags, _ = lint_costs(airshed_cycle())
        assert "FX020" not in codes(diags)

    def test_byte_budget_flags_the_allgather(self):
        budget = CostBudget(max_step_bytes=1 << 20)
        diags, _ = lint_costs(airshed_cycle(), budget)
        flagged = [d for d in diags if d.code == "FX020"]
        assert any(d.phase == "D_Chem->D_Repl" for d in flagged)

    def test_message_budget(self):
        budget = CostBudget(max_step_messages=1)
        diags, _ = lint_costs(airshed_cycle(), budget)
        assert "FX020" in codes(diags)
        [d] = [d for d in diags
               if d.code == "FX020" and d.phase == "D_Chem->D_Repl"]
        assert "messages" in d.details["violations"]

    def test_generous_budget_is_clean(self):
        budget = CostBudget(max_step_messages=10**9,
                            max_step_bytes=10**12,
                            max_step_seconds=10**6)
        diags, _ = lint_costs(airshed_cycle(), budget)
        assert "FX020" not in codes(diags)

    def test_each_step_flagged_once(self):
        prog = build_program("dataparallel", dataset="la", nprocs=64)
        budget = CostBudget(max_step_bytes=1)
        diags, table = lint_costs(prog, budget)
        flagged = [d.phase for d in diags if d.code == "FX020"]
        assert len(flagged) == len(set(flagged))
        assert all(table[name]["occurrences"] >= 1 for name in flagged)


class TestCheaperOrder:
    def test_unread_intermediate_suggests_direct_hop(self):
        """D_Chem -> D_Trans -> D_Repl with the D_Trans layout never read:
        going straight to D_Repl is cheaper, so FX021 fires."""
        prog = FxProgram(
            name="detour",
            machine=T3E,
            nprocs=64,
            arrays=[ArrayDecl("conc", SHAPE, initial=D_CHEM)],
            phases=[
                PhaseDecl(op="redistribute", name="->trans", array="conc",
                          target=D_TRANS),
                PhaseDecl(op="redistribute", name="->repl", array="conc",
                          target=D_REPL),
                PhaseDecl(op="compute", name="aerosol", array="conc",
                          layout=D_REPL),
            ],
        )
        diags, _ = lint_costs(prog)
        hints = [d for d in diags if d.code == "FX021"]
        assert len(hints) == 1
        assert hints[0].details["direct_seconds"] < \
            hints[0].details["via_seconds"]

    def test_consumed_intermediate_is_not_flagged(self):
        diags, _ = lint_costs(airshed_cycle())
        assert "FX021" not in codes(diags)

    def test_shipped_dataparallel_has_no_cheaper_order(self):
        prog = build_program("dataparallel", dataset="la", nprocs=64)
        diags, _ = lint_costs(prog)
        assert "FX021" not in codes(diags)
