"""REPRO_SANITIZE=1: the runtime hash-input shim and its ledger."""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analyze import DeterminismError, check_digest, sanitize_enabled
from repro.sched import JobSpec

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def canon(fields):
    return json.dumps(fields, sort_keys=True, separators=(",", ":"))


def digest_of(payload):
    return hashlib.sha256(payload.encode()).hexdigest()


class TestSwitch:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()

    def test_enabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()

    def test_digest_shim_is_off_path_when_disabled(self, monkeypatch,
                                                   tmp_path):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        monkeypatch.setenv("REPRO_SANITIZE_DIR", str(tmp_path / "ledger"))
        JobSpec().key
        assert not (tmp_path / "ledger").exists()


class TestCheckDigest:
    @pytest.fixture(autouse=True)
    def ledger(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SANITIZE_DIR", str(tmp_path))
        return tmp_path

    def test_stable_payload_passes_and_is_recorded(self, ledger):
        fields = {"b": 2, "a": 1}
        payload = canon(fields)
        digest = digest_of(payload)
        check_digest(fields, payload, digest)
        entry = ledger / digest[:2] / f"{digest}.json"
        assert entry.read_text() == payload

    def test_insertion_order_dependence_raises(self):
        fields = {"b": 2, "a": 1}
        payload = json.dumps(fields, separators=(",", ":"))  # no sort_keys
        with pytest.raises(DeterminismError, match="insertion order"):
            check_digest(fields, payload, digest_of(payload))

    def test_non_json_payload_raises(self):
        # a payload produced by some other serializer entirely
        fields = {"a": 1}
        payload = str(fields)
        with pytest.raises(DeterminismError):
            check_digest(fields, payload, digest_of(payload))

    def test_ledger_collision_raises(self, ledger):
        fields = {"a": 1}
        payload = canon(fields)
        digest = digest_of(payload)
        check_digest(fields, payload, digest)
        # simulate an earlier process that hashed different bytes into
        # the same digest name (i.e. the payload drifted)
        entry = ledger / digest[:2] / f"{digest}.json"
        entry.write_text(canon({"a": 2}))
        with pytest.raises(DeterminismError, match="different bytes"):
            check_digest(fields, payload, digest)

    def test_repeat_digest_is_idempotent(self, ledger):
        fields = {"a": 1}
        payload = canon(fields)
        digest = digest_of(payload)
        check_digest(fields, payload, digest)
        check_digest(fields, payload, digest)  # second call: ledger hit


class TestAcrossRestarts:
    """The property the mode exists for: keys are stable across
    process restarts, verified through a shared on-disk ledger."""

    CODE = ("from repro.sched import JobSpec; "
            "print(JobSpec(dataset='la', hours=3).key)")

    def _env(self, ledger):
        return {**os.environ, "PYTHONPATH": str(REPO_SRC),
                "REPRO_SANITIZE": "1", "REPRO_SANITIZE_DIR": str(ledger)}

    def _spec_key(self, ledger):
        out = subprocess.run(
            [sys.executable, "-c", self.CODE],
            capture_output=True, text=True, check=True,
            env=self._env(ledger),
        )
        return out.stdout.strip()

    def test_key_is_bitwise_stable_across_processes(self, tmp_path):
        first = self._spec_key(tmp_path)
        second = self._spec_key(tmp_path)
        assert first == second
        assert len(first) == 64
        # both runs verified against the same ledger entries
        assert list(tmp_path.rglob("*.json"))

    def test_poisoned_ledger_fails_the_second_run(self, tmp_path):
        self._spec_key(tmp_path)
        for entry in tmp_path.rglob("*.json"):
            entry.write_text(entry.read_text().replace("la", "ne"))
        proc = subprocess.run(
            [sys.executable, "-c", self.CODE],
            capture_output=True, text=True,
            env=self._env(tmp_path),
        )
        assert proc.returncode != 0
        assert "DeterminismError" in proc.stderr
