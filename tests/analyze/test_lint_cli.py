"""`repro lint` end to end: exit codes, JSON output, broken fixtures."""

import json
from pathlib import Path

import pytest

from repro.analyze import ArrayDecl, FxProgram, PhaseDecl, TaskDecl
from repro.analyze.diagnostics import AnalysisReport, Diagnostic
from repro.analyze.programs import _REGISTRY, register_program
from repro.cli import main
from repro.fx import Distribution
from repro.sched import machine_grid
from repro.vm import get_machine

REPO_ROOT = Path(__file__).resolve().parents[2]

SHAPE = (35, 5, 700)
D_REPL = Distribution.replicated(3)
D_TRANS = Distribution.block(3, 1)


def build_racy(machine="t3e", nprocs=16, **_ignored) -> FxProgram:
    """Two overlappable stages both mutate `conc` with no handoff — the
    classic adjacent-hours write-write race of an unsynchronised pipeline."""
    if isinstance(machine, str):
        machine = get_machine(machine)
    return FxProgram(
        name="racy",
        machine=machine,
        nprocs=nprocs,
        arrays=[ArrayDecl("conc", SHAPE)],
        tasks=[
            TaskDecl("main", nprocs - 1, writes=frozenset({"conc"})),
            TaskDecl("output", 1, reads=frozenset({"conc"}),
                     writes=frozenset({"conc"})),
        ],
    )


def build_mismatched(machine="t3e", nprocs=16, **_ignored) -> FxProgram:
    """A redistribution whose 2-d directive cannot apply to the 3-d array."""
    if isinstance(machine, str):
        machine = get_machine(machine)
    return FxProgram(
        name="mismatched",
        machine=machine,
        nprocs=nprocs,
        arrays=[ArrayDecl("conc", SHAPE, initial=D_REPL)],
        phases=[
            PhaseDecl(op="redistribute", name="->bad", array="conc",
                      target=Distribution.block(2, 0)),
            PhaseDecl(op="redistribute", name="->trans", array="conc",
                      target=D_TRANS),
            PhaseDecl(op="compute", name="transport", array="conc",
                      layout=D_TRANS),
        ],
    )


@pytest.fixture()
def broken_drivers():
    register_program("test-racy", build_racy)
    register_program("test-mismatched", build_mismatched)
    yield
    del _REGISTRY["test-racy"]
    del _REGISTRY["test-mismatched"]


class TestShippedDrivers:
    @pytest.mark.parametrize("driver", ["sequential", "dataparallel",
                                        "taskparallel"])
    def test_exits_zero(self, driver, capsys):
        rc = main(["lint", "--driver", driver, "--dataset", "la",
                   "--machine", "t3e", "-n", "64"])
        assert rc == 0
        assert "analysis of" in capsys.readouterr().out

    def test_crosscheck_confirms_77_steps(self, capsys):
        rc = main(["lint", "--driver", "dataparallel", "--dataset", "la",
                   "--machine", "t3e", "-n", "64", "--crosscheck", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["predicted_comm_steps"] == 77
        assert report["summary"]["executed_comm_steps"] == 77

    def test_unknown_driver_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["lint", "--driver", "mpi"])


class TestBrokenFixtures:
    def test_injected_race_fails(self, broken_drivers, capsys):
        rc = main(["lint", "--driver", "test-racy"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "FX010" in out

    def test_mismatched_layout_fails(self, broken_drivers, capsys):
        rc = main(["lint", "--driver", "test-mismatched"])
        assert rc == 2
        assert "FX001" in capsys.readouterr().out

    def test_json_enumerates_stable_codes(self, broken_drivers, capsys):
        rc = main(["lint", "--driver", "test-racy", "--json"])
        assert rc == 2
        report = json.loads(capsys.readouterr().out)
        assert report["exit_code"] == 2
        entries = {d["code"]: d for d in report["diagnostics"]}
        assert "FX010" in entries
        assert entries["FX010"]["severity"] == "error"
        assert entries["FX010"]["details"]["variables"] == ["conc"]


class TestBudgetFlags:
    def test_budget_violation_exits_one(self, capsys):
        rc = main(["lint", "--driver", "dataparallel", "--dataset", "la",
                   "-n", "64", "--max-step-bytes", "1048576"])
        assert rc == 1
        assert "FX020" in capsys.readouterr().out

    def test_json_reports_cost_table(self, capsys):
        rc = main(["lint", "--driver", "dataparallel", "--dataset", "la",
                   "-n", "64", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert "D_Chem->D_Repl" in report["cost_table"]
        assert report["cost_table"]["D_Chem->D_Repl"]["occurrences"] == 24


class TestJsonHeaderAndDedupe:
    def test_json_header_maps_severity_to_exit_codes(self, capsys):
        rc = main(["lint", "--driver", "dataparallel", "--dataset", "la",
                   "-n", "64", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["severity_exit_codes"] == {
            "info": 0, "warning": 1, "error": 2,
        }

    def test_identical_diagnostics_are_deduped(self):
        report = AnalysisReport(program="dedupe")
        diag = Diagnostic(code="FX050", message="unseeded",
                          location="pkg/mod.py:3", details={"call": "x"})
        clone = Diagnostic(code="FX050", message="unseeded",
                           location="pkg/mod.py:3", details={"call": "x"})
        other = Diagnostic(code="FX050", message="unseeded",
                           location="pkg/mod.py:9", details={"call": "x"})
        report.extend([diag, clone, other, diag])
        assert len(report.diagnostics) == 2


class TestCampaignMode:
    def test_demo_ladder_is_clean(self, capsys):
        rc = main(["lint", "--campaign", "ladder:demo", "--hours", "1"])
        assert rc == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_doomed_timeout_exits_two(self, capsys):
        rc = main(["lint", "--campaign", "ladder:demo", "--hours", "1",
                   "--timeout", "1e-6"])
        assert rc == 2
        assert "FX044" in capsys.readouterr().out

    def test_json_spec_file_is_verified(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        specs = machine_grid(dataset="demo", hours=1)
        plan.write_text(json.dumps([s.to_dict() for s in specs]))
        rc = main(["lint", "--campaign", str(plan), "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["specs"] == len(specs)
        assert report["summary"]["spec_class"] == "JobSpec"

    def test_unknown_sweep_form_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["lint", "--campaign", "zigzag:demo"])

    def test_modes_are_exclusive(self):
        with pytest.raises(SystemExit):
            main(["lint", "--campaign", "ladder:demo", "--determinism"])


class TestDeterminismMode:
    ARGS = ["lint", "--determinism",
            "--root", str(REPO_ROOT / "src" / "repro"),
            "--allowlist", str(REPO_ROOT / ".repro-determinism-allow")]

    def test_repo_with_committed_allowlist_is_clean(self, capsys):
        rc = main(self.ARGS)
        assert rc == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_json_reports_scan_summary(self, capsys):
        rc = main(self.ARGS + ["--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["files_scanned"] > 50
        assert report["summary"]["findings"] == 0
        assert report["summary"]["allowlisted"] > 0
        assert report["severity_exit_codes"]["error"] == 2

    def test_without_allowlist_warnings_exit_one(self, tmp_path, capsys):
        empty = tmp_path / "empty-allow"
        empty.write_text("# nothing audited\n")
        rc = main(["lint", "--determinism",
                   "--root", str(REPO_ROOT / "src" / "repro"),
                   "--allowlist", str(empty)])
        out = capsys.readouterr().out
        # Since the executor refactor moved per-attempt stats into a
        # local closure, every audited site is a wall-clock/env WARNING.
        assert rc == 1, out
        assert "FX051" in out
        assert "repro/service/daemon.py" in out

    def test_missing_allowlist_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["lint", "--determinism", "--allowlist", "/nonexistent"])
