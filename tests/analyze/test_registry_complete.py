"""Every registered diagnostic code is documented and exercised.

A code that ships undocumented is unusable; a code no test exercises
can silently rot.  Both checks are textual on purpose — they gate the
*artifacts* (docs/ANALYZE.md and the test suite), not the
implementation.
"""

import re
from pathlib import Path

import pytest

from repro.analyze import REGISTRY, SEVERITY_EXIT_CODES, Severity
from repro.analyze.diagnostics import DIAGNOSTIC_CODES

REPO_ROOT = Path(__file__).resolve().parents[2]
ANALYZE_MD = REPO_ROOT / "docs" / "ANALYZE.md"
TESTS_DIR = Path(__file__).resolve().parents[1]


def all_test_text():
    return "\n".join(
        p.read_text() for p in sorted(TESTS_DIR.rglob("test_*.py"))
        if p.name != Path(__file__).name
    )


class TestRegistryShape:
    def test_registry_is_the_diagnostic_code_table(self):
        assert REGISTRY is DIAGNOSTIC_CODES

    def test_codes_are_stable_fx_numbers(self):
        assert all(re.fullmatch(r"FX\d{3}", c) for c in REGISTRY)

    def test_every_severity_has_an_exit_code(self):
        # string-keyed: this mapping ships verbatim as the JSON
        # report's severity_exit_codes header
        assert SEVERITY_EXIT_CODES == {"info": 0, "warning": 1, "error": 2}
        assert {s.name.lower() for s in Severity} == set(SEVERITY_EXIT_CODES)

    def test_new_pass_families_are_registered(self):
        fx04x = {c for c in REGISTRY if c.startswith("FX04")}
        fx05x = {c for c in REGISTRY if c.startswith("FX05")}
        assert fx04x == {"FX040", "FX041", "FX042", "FX043",
                         "FX044", "FX045"}
        assert fx05x == {"FX050", "FX051", "FX052", "FX053",
                         "FX054", "FX055"}


@pytest.mark.parametrize("code", sorted(REGISTRY))
class TestEveryCode:
    def test_documented_in_analyze_md(self, code):
        assert code in ANALYZE_MD.read_text(), (
            f"{code} is registered but not documented in docs/ANALYZE.md"
        )

    def test_exercised_by_a_test(self, code):
        assert code in all_test_text(), (
            f"{code} is registered but no test mentions it"
        )
