"""Tests for the I/O processing substrate."""

import numpy as np
import pytest

from repro.datasets import make_la
from repro.io import (
    inputhour,
    outputhour,
    pack_concentrations,
    pack_hourly,
    pretrans,
    unpack_concentrations,
    unpack_hourly,
)
from repro.transport import SUPGTransport


@pytest.fixture(scope="module")
def la():
    return make_la()


class TestFiles:
    def test_hourly_roundtrip(self, la):
        cond = la.hourly(9)
        blob = pack_hourly(cond)
        back = unpack_hourly(blob)
        assert back.hour == cond.hour
        assert back.temperature == cond.temperature
        assert back.sun == cond.sun
        assert np.array_equal(back.emissions, cond.emissions)
        assert np.array_equal(back.boundary, cond.boundary)

    def test_concentration_roundtrip(self, la):
        conc = la.initial_conditions()
        blob = pack_concentrations(7, conc)
        hour, back = unpack_concentrations(blob)
        assert hour == 7
        assert np.array_equal(back, conc)

    def test_blob_sizes_scale_with_data(self, la):
        small = pack_concentrations(0, np.zeros((2, 2, 10)))
        big = pack_concentrations(0, np.zeros((35, 5, 700)))
        assert len(big) > 10 * len(small)


class TestHourlyPhases:
    def test_inputhour_parses_and_accounts(self, la):
        res = inputhour(la, 8)
        assert res.conditions.hour == 8
        assert res.nbytes > 0
        assert res.ops == pytest.approx(res.nbytes)

    def test_pretrans_builds_per_layer_operators(self, la):
        tr = SUPGTransport(la.mesh, diffusivity=la.wind.diffusivity)
        ops_list, ops = pretrans(la, tr, hour=8, dt=300.0)
        assert len(ops_list) == la.layers
        assert ops > 0
        # Layers have different winds (shear), hence different operators.
        c = np.ones((1, la.npoints))
        out0, _ = ops_list[0].step(c)
        out4, _ = ops_list[4].step(c)
        assert np.allclose(out0, 1.0, atol=1e-9)
        assert np.allclose(out4, 1.0, atol=1e-9)

    def test_outputhour_packs(self, la):
        conc = la.initial_conditions()
        blob, nbytes, ops = outputhour(3, conc)
        assert nbytes == len(blob)
        assert ops == pytest.approx(0.5 * nbytes)
        hour, back = unpack_concentrations(blob)
        assert hour == 3
        assert np.array_equal(back, conc)
