"""Docs consistency checks: links resolve, documented commands exist."""

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([ROOT / "README.md", *(ROOT / "docs").glob("*.md")])

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CLI_RE = re.compile(r"python -m repro +(\w+)")


def doc_ids():
    return [str(p.relative_to(ROOT)) for p in DOC_FILES]


def test_required_docs_exist():
    assert (ROOT / "docs" / "ARCHITECTURE.md").is_file()
    assert (ROOT / "docs" / "OBSERVABILITY.md").is_file()
    assert (ROOT / "docs" / "ANALYZE.md").is_file()
    assert (ROOT / "docs" / "PERFORMANCE.md").is_file()
    assert (ROOT / "docs" / "SCHEDULER.md").is_file()
    assert (ROOT / "docs" / "SERVICE.md").is_file()
    assert (ROOT / "docs" / "TUNING.md").is_file()


def test_performance_doc_is_linked_and_current():
    """PERFORMANCE.md is reachable and names the real artifacts."""
    readme = (ROOT / "README.md").read_text()
    assert "docs/PERFORMANCE.md" in readme
    perf = (ROOT / "docs" / "PERFORMANCE.md").read_text()
    for artifact in ("benchmarks.perf.suite", "TransferBatch",
                     "REPRO_CHEM_NO_C", "golden_replay.json"):
        assert artifact in perf, f"PERFORMANCE.md no longer mentions {artifact}"
    assert (ROOT / "benchmarks" / "perf" / "baseline.json").is_file()


@pytest.mark.parametrize("doc", DOC_FILES, ids=doc_ids())
def test_relative_links_resolve(doc):
    """Every relative markdown link points at a real file."""
    broken = []
    for target in LINK_RE.findall(doc.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = (doc.parent / target.split("#", 1)[0]).resolve()
        if not path.exists():
            broken.append(target)
    assert not broken, f"broken links in {doc.name}: {broken}"


def _parser_subcommands():
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return set(action.choices)
    raise AssertionError("CLI has no subparsers")


@pytest.mark.parametrize("doc", DOC_FILES, ids=doc_ids())
def test_documented_cli_subcommands_exist(doc):
    documented = set(CLI_RE.findall(doc.read_text()))
    unknown = documented - _parser_subcommands()
    assert not unknown, f"{doc.name} documents unknown subcommands: {unknown}"


def test_trace_subcommand_is_documented():
    """The observability entry point is reachable from the README."""
    assert "trace" in _parser_subcommands()
    assert "python -m repro trace" in (ROOT / "README.md").read_text()


def test_lint_subcommand_is_documented():
    """The static-analysis entry point is reachable from the README."""
    assert "lint" in _parser_subcommands()
    readme = (ROOT / "README.md").read_text()
    assert "python -m repro lint" in readme
    assert "docs/ANALYZE.md" in readme


def test_analyze_doc_covers_every_diagnostic_code():
    """docs/ANALYZE.md's code table must list every registered FXnnn."""
    from repro.analyze import DIAGNOSTIC_CODES

    text = (ROOT / "docs" / "ANALYZE.md").read_text()
    missing = [code for code in DIAGNOSTIC_CODES if f"`{code}`" not in text]
    assert not missing, f"ANALYZE.md misses diagnostic codes: {missing}"


def test_analyze_doc_linked_from_architecture():
    text = (ROOT / "docs" / "ARCHITECTURE.md").read_text()
    assert "ANALYZE.md" in text


def test_scheduler_doc_is_linked_and_current():
    """SCHEDULER.md is reachable and names the real artifacts."""
    assert "docs/SCHEDULER.md" in (ROOT / "README.md").read_text()
    assert "SCHEDULER.md" in (ROOT / "docs" / "ARCHITECTURE.md").read_text()
    sched = (ROOT / "docs" / "SCHEDULER.md").read_text()
    for artifact in ("repro.sched", "JobSpec", "science_key",
                     "FaultPolicy", "checkpoint_hours",
                     "python -m repro campaign",
                     "campaign_sweep.py"):
        assert artifact in sched, f"SCHEDULER.md no longer mentions {artifact}"


def test_service_doc_is_linked_and_current():
    """SERVICE.md is reachable and names the real artifacts."""
    assert "docs/SERVICE.md" in (ROOT / "README.md").read_text()
    assert "SERVICE.md" in (ROOT / "docs" / "ARCHITECTURE.md").read_text()
    assert "SERVICE.md" in (ROOT / "docs" / "SCHEDULER.md").read_text()
    text = (ROOT / "docs" / "SERVICE.md").read_text()
    for artifact in ("repro.service", "JournalJobStore", "FairShareQueue",
                     "CampaignService", "ShardedResultCache",
                     "ServiceClient", "python -m repro serve", "--server",
                     "--tenant-weight", "fair-share", "/api/submit",
                     "journal.jsonl", "warm_science_keys"):
        assert artifact in text, f"SERVICE.md no longer mentions {artifact}"


def test_serve_subcommand_is_documented():
    """The service entry point is reachable from the README."""
    assert "serve" in _parser_subcommands()
    readme = (ROOT / "README.md").read_text()
    assert "python -m repro serve" in readme


def test_campaign_and_bench_subcommands_are_documented():
    subcommands = _parser_subcommands()
    assert "campaign" in subcommands
    assert "bench" in subcommands
    readme = (ROOT / "README.md").read_text()
    assert "python -m repro campaign" in readme
    assert "python -m repro bench" in readme


def test_tuning_doc_is_linked_and_current():
    """TUNING.md is reachable and names the real artifacts."""
    assert "docs/TUNING.md" in (ROOT / "README.md").read_text()
    for doc in ("ARCHITECTURE.md", "SCHEDULER.md", "SERVICE.md",
                "ANALYZE.md"):
        assert "TUNING.md" in (ROOT / "docs" / doc).read_text(), (
            f"{doc} no longer links TUNING.md")
    text = (ROOT / "docs" / "TUNING.md").read_text()
    for artifact in ("repro.tune", "CalibrationStore", "journal.jsonl",
                     "refit_observations", "drift_report", "Autotuner",
                     "AutotunePlanner", "--autotune", "tuned_key",
                     "generation", "fingerprint", "FX060", "FX063",
                     "python -m repro tune", "queue_wait_s",
                     ".repro-determinism-allow"):
        assert artifact in text, f"TUNING.md no longer mentions {artifact}"


def test_tune_subcommand_is_documented():
    """The tuning entry point is reachable from the README."""
    assert "tune" in _parser_subcommands()
    readme = (ROOT / "README.md").read_text()
    assert "python -m repro tune" in readme
    assert "--autotune" in readme


def test_ensembles_doc_is_linked_and_current():
    """ENSEMBLES.md exists, is reachable and names the real artifacts."""
    assert (ROOT / "docs" / "ENSEMBLES.md").is_file()
    assert "docs/ENSEMBLES.md" in (ROOT / "README.md").read_text()
    assert "ENSEMBLES.md" in (ROOT / "docs" / "ARCHITECTURE.md").read_text()
    text = (ROOT / "docs" / "ENSEMBLES.md").read_text()
    for artifact in ("BatchedEnsemble", "run_batched", "member_edges",
                     "PerturbedDataset", "seed * 7919 + index",
                     "REPRO_CHEM_NO_C", "ensemble_key", "relative_spread",
                     "--no-fuse", "python -m repro campaign"):
        assert artifact in text, f"ENSEMBLES.md no longer mentions {artifact}"


def _ensembles_cli_examples():
    """Full command lines from ENSEMBLES.md code blocks."""
    import shlex

    text = (ROOT / "docs" / "ENSEMBLES.md").read_text()
    cmds = []
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("python -m repro ") and "--help" not in line:
            cmds.append(shlex.split(line)[3:])
    return cmds


def test_ensembles_doc_cli_examples_parse():
    """Every CLI example in ENSEMBLES.md parses against the real CLI."""
    cmds = _ensembles_cli_examples()
    assert len(cmds) >= 4  # plan, run, status, --no-fuse variants
    parser = build_parser()
    for argv in cmds:
        parser.parse_args(argv)  # SystemExit on a stale example


def test_ensembles_doc_campaign_example_runs(tmp_path, monkeypatch):
    """The fused-run example executes end to end (demo-sized only)."""
    from repro.cli import main

    monkeypatch.chdir(tmp_path)  # examples use a relative --cache-dir
    ran = 0
    for argv in _ensembles_cli_examples():
        if "run" not in argv or "la" in argv:
            continue
        assert main(argv) == 0
        ran += 1
    assert ran >= 2  # the fused and --no-fuse runs both complete
