"""Journal durability, torn-write tolerance and snapshot compaction."""

import json

import pytest

from repro.sched import JobSpec
from repro.service import JournalJobStore, ServiceState


def _submit_event(cid="c000001", tenant="alice", hours=(1, 2)):
    return {
        "type": "submit", "cid": cid, "tenant": tenant,
        "specs": [JobSpec(dataset="demo", hours=h).to_dict()
                  for h in hours],
        "workers": 2, "fuse": True,
    }


class TestJournal:
    def test_append_then_events_roundtrip(self, tmp_path):
        store = JournalJobStore(tmp_path)
        store.append(_submit_event())
        store.append({"type": "done", "cid": "c000001", "status": "done"})
        events = list(store.events())
        assert [e["type"] for e in events] == ["submit", "done"]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        store = JournalJobStore(tmp_path)
        store.append(_submit_event())
        store.append({"type": "done", "cid": "c000001", "status": "done"})
        # crash mid-append: a partial line with no trailing newline
        with store.journal_path.open("a") as fh:
            fh.write('{"type": "job", "cid"')
        events = list(store.events())
        assert [e["type"] for e in events] == ["submit", "done"]

    def test_interior_corruption_raises(self, tmp_path):
        store = JournalJobStore(tmp_path)
        store.append(_submit_event())
        with store.journal_path.open("a") as fh:
            fh.write("garbage line\n")  # newline: not a torn tail
        store.append({"type": "done", "cid": "c000001", "status": "done"})
        with pytest.raises(ValueError, match="corrupt journal line"):
            list(store.events())

    def test_compact_snapshots_and_truncates(self, tmp_path):
        store = JournalJobStore(tmp_path)
        store.append(_submit_event())
        store.append({"type": "done", "cid": "c000001", "status": "done"})
        state = ServiceState.fold(store.events())
        store.compact({"events": state.to_events()})
        assert store.journal_path.read_text() == ""
        assert json.loads(store.snapshot_path.read_text())["events"]
        refolded = ServiceState.fold(store.events())
        assert refolded.campaigns["c000001"].status == "done"

    def test_events_survive_compaction_plus_new_appends(self, tmp_path):
        store = JournalJobStore(tmp_path)
        store.append(_submit_event("c000001"))
        store.compact(
            {"events": ServiceState.fold(store.events()).to_events()}
        )
        store.append(_submit_event("c000002", tenant="bob"))
        state = ServiceState.fold(store.events())
        assert sorted(state.campaigns) == ["c000001", "c000002"]
        assert state.next_seq == 3


class TestServiceState:
    def test_fold_tracks_jobs_and_status(self):
        state = ServiceState()
        state.apply(_submit_event())
        spec = JobSpec(dataset="demo", hours=1)
        state.apply({
            "type": "job", "cid": "c000001", "key": spec.key,
            "row": {"status": "ok"},
        })
        record = state.campaigns["c000001"]
        assert record.status == "running"
        assert record.n_done == 1
        assert [s.hours for s in record.pending_specs()] == [2]

    def test_cancel_is_terminal(self):
        state = ServiceState()
        state.apply(_submit_event())
        state.apply({"type": "cancel", "cid": "c000001"})
        assert state.campaigns["c000001"].status == "cancelled"

    def test_events_for_unknown_campaign_are_ignored(self):
        state = ServiceState()
        state.apply({"type": "job", "cid": "c999999", "key": "k",
                     "row": {}})
        assert state.campaigns == {}

    def test_to_events_is_a_fixed_point(self):
        state = ServiceState()
        state.apply(_submit_event())
        spec = JobSpec(dataset="demo", hours=1)
        state.apply({
            "type": "job", "cid": "c000001", "key": spec.key,
            "row": {"status": "ok"},
        })
        refolded = ServiceState.fold(iter(state.to_events()))
        assert refolded.to_events() == state.to_events()
