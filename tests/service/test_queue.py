"""Fair-share stride scheduling across tenants."""

import pytest

from repro.service import FairShareQueue, QueueItem


def _item(tenant, n, cost=1.0):
    return QueueItem(tenant=tenant, cid=f"c-{tenant}", spec=n, cost=cost)


class TestFairShare:
    def test_equal_weights_interleave(self):
        q = FairShareQueue()
        for n in range(3):
            q.push(_item("alice", n))
            q.push(_item("bob", n))
        order = [(i.tenant, i.spec) for i in q.pop_wave(6)]
        assert order == [
            ("alice", 0), ("bob", 0), ("alice", 1),
            ("bob", 1), ("alice", 2), ("bob", 2),
        ]

    def test_weighted_tenant_drains_faster(self):
        q = FairShareQueue()
        q.set_weight("bob", 2.0)
        for n in range(4):
            q.push(_item("alice", n))
            q.push(_item("bob", n))
        order = [i.tenant for i in q.pop_wave(8)]
        # bob (weight 2) gets two dispatches per alice dispatch
        assert order[:6].count("bob") == 4
        assert order[:6].count("alice") == 2

    def test_uncontended_tenant_gets_everything(self):
        q = FairShareQueue()
        for n in range(3):
            q.push(_item("alice", n))
        assert [i.spec for i in q.pop_wave(10)] == [0, 1, 2]

    def test_reactivated_tenant_does_not_monopolize(self):
        q = FairShareQueue()
        # alice runs alone for a while, advancing her vtime
        for n in range(4):
            q.push(_item("alice", n))
        q.pop_wave(4)
        # bob appears later; alice enqueues more at the same instant
        for n in range(4, 8):
            q.push(_item("alice", n))
        for n in range(4):
            q.push(_item("bob", n))
        order = [i.tenant for i in q.pop_wave(4)]
        # bob's vtime is clamped up to alice's: they interleave, bob
        # does not burn through his whole backlog first
        assert order.count("bob") == 2
        assert order.count("alice") == 2

    def test_cost_charges_vtime(self):
        q = FairShareQueue()
        q.push(_item("alice", "big", cost=8.0))
        q.push(_item("alice", "after-big", cost=1.0))
        q.push(_item("bob", "b1", cost=1.0))
        q.push(_item("bob", "b2", cost=1.0))
        first = q.pop()
        assert (first.tenant, first.spec) == ("alice", "big")
        # alice paid 8 units of vtime: bob runs until he catches up
        following = [i.tenant for i in q.pop_wave(3)]
        assert following == ["bob", "bob", "alice"]

    def test_drop_and_pending(self):
        q = FairShareQueue()
        for n in range(3):
            q.push(_item("alice", n))
        q.push(_item("bob", 0))
        assert q.pending() == {"alice": 3, "bob": 1}
        assert q.drop(lambda i: i.tenant == "alice") == 3
        assert q.pending() == {"bob": 1}
        assert len(q) == 1

    def test_empty_pop_is_none(self):
        assert FairShareQueue().pop() is None
        assert FairShareQueue().pop_wave(4) == []

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            FairShareQueue(default_weight=0)
        with pytest.raises(ValueError):
            FairShareQueue().set_weight("alice", -1)
