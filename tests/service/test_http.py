"""The HTTP JSON API and the thin client, over a real socket."""

import threading

import pytest

from repro.sched import scaling_ladder
from repro.service import (
    CampaignService,
    ServiceClient,
    ServiceError,
    build_http_server,
)


@pytest.fixture
def served(tmp_path):
    """A running service + HTTP server + client on an ephemeral port."""
    service = CampaignService(tmp_path / "svc", workers=2,
                              executor="inline", sleep=lambda s: None)
    server = build_http_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", sleep=lambda s: None)
    yield service, client
    server.shutdown()


def ladder(nodes=(4, 16)):
    return scaling_ladder(dataset="demo", machine="t3e",
                          node_counts=nodes, hours=1)


class TestAPI:
    def test_health(self, served):
        _, client = served
        assert client.health()["ok"] is True

    def test_submit_wait_results(self, served):
        service, client = served
        cid = client.submit(ladder(), tenant="alice")
        assert cid == "c000001"
        assert client.status(cid)["status"] == "queued"
        service.run_until_idle()
        status = client.wait(cid, timeout=10)
        assert status["status"] == "done"
        rows = client.results(cid)
        assert [r["status"] for r in rows] == ["ok", "ok"]
        assert all(r["sha256"] for r in rows)

    def test_submit_accepts_spec_dicts(self, served):
        service, client = served
        cid = client.submit([s.to_dict() for s in ladder()],
                            tenant="alice")
        service.run_until_idle()
        assert client.wait(cid, timeout=10)["status"] == "done"

    def test_second_tenant_overlap_is_cache_hits(self, served):
        service, client = served
        client.submit(ladder(), tenant="alice")
        service.run_until_idle()
        cid_b = client.submit(ladder(), tenant="bob")
        service.run_until_idle()
        rows = client.results(cid_b)
        assert all(r["from_cache"] for r in rows)
        stats = client.stats()
        assert stats["counters"]["service:tenant:bob:cache_hits"] == 2

    def test_cancel(self, served):
        _, client = served
        cid = client.submit(ladder((1, 4, 16, 64)), tenant="alice")
        assert client.cancel(cid) is True
        assert client.status(cid)["status"] == "cancelled"
        assert client.cancel(cid) is False

    def test_campaigns_listing(self, served):
        _, client = served
        client.submit(ladder(), tenant="alice")
        client.submit(ladder(), tenant="bob")
        listed = client.campaigns()
        assert [c["tenant"] for c in listed] == ["alice", "bob"]


class TestErrors:
    def test_unknown_campaign_is_404(self, served):
        _, client = served
        with pytest.raises(ServiceError) as err:
            client.status("c999999")
        assert err.value.code == 404

    def test_empty_submission_is_400(self, served):
        _, client = served
        with pytest.raises(ServiceError) as err:
            client.submit([], tenant="alice")
        assert err.value.code == 400

    def test_unknown_route_is_404(self, served):
        _, client = served
        with pytest.raises(ServiceError) as err:
            client._request("/api/nonsense")
        assert err.value.code == 404

    def test_unreachable_service(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="unreachable"):
            client.health()

    def test_wait_timeout(self, served):
        _, client = served
        cid = client.submit(ladder(), tenant="alice")
        # the scheduler loop is not running: the campaign stays queued
        with pytest.raises(TimeoutError):
            client.wait(cid, timeout=0.0, poll=0.0)
