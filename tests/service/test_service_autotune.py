"""Autotuned waves in the resident service: keys, harvest, identity."""

from repro.sched import scaling_ladder
from repro.service import CampaignService
from repro.tune import CalibrationStore


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


def make_service(root, workers=2, **kwargs):
    kwargs.setdefault("executor", "inline")
    kwargs.setdefault("sleep", lambda s: None)
    kwargs.setdefault("clock", FakeClock())
    return CampaignService(root, workers=workers, **kwargs)


def ladder(nodes=(4, 16)):
    return scaling_ladder(dataset="demo", machine="t3e",
                          node_counts=nodes, hours=1)


def test_autotuned_wave_delivers_under_submitted_keys(tmp_path):
    svc = make_service(tmp_path / "svc", autotune=True)
    specs = ladder()
    cid = svc.submit("alice", specs)
    assert svc.run_until_idle() == 2
    rows = svc.results(cid)
    # the results API indexes by the keys the tenant submitted
    assert {r["key"] for r in rows} == {s.key for s in specs}
    assert all(r["status"] == "ok" for r in rows)
    retuned = [r for r in rows if r.get("tuned_key")]
    for row in retuned:
        assert row["tuned_key"] != row["key"]
    # tuning placement never changes the science bits
    assert len({r["sha256"] for r in rows}) == 1


def test_autotune_defaults_to_a_store_under_root(tmp_path):
    svc = make_service(tmp_path / "svc", autotune=True)
    svc.submit("alice", ladder())
    svc.run_until_idle()
    store = CalibrationStore(tmp_path / "svc" / "tune")
    assert store.generation > 0  # the wave harvested its report
    decisions = store.decisions()
    assert len(decisions) == 2  # one record per submitted spec
    assert all(d["science_key"] == ladder()[0].science_key
               for d in decisions)
    assert svc.stats()["tune"]["n_decisions"] == 2
    assert svc.stats()["counters"]["service:tuned_jobs"] == 2


def test_later_waves_replan_with_fresher_calibration(tmp_path):
    svc = make_service(tmp_path / "svc", autotune=True)
    svc.submit("alice", ladder())
    svc.run_until_idle()
    store = svc.tune_store
    first_generation = store.generation
    assert store.decisions()[-1]["generation"] == 0  # cold first wave
    svc.submit("alice", ladder((1, 64)))
    svc.run_until_idle()
    # the second wave's decisions cite the first wave's harvest
    assert store.decisions()[-1]["generation"] == first_generation > 0


def test_tune_store_without_autotune_harvests_only(tmp_path):
    store_root = tmp_path / "obs"
    svc = make_service(tmp_path / "svc", tune_store=store_root)
    cid = svc.submit("alice", ladder())
    svc.run_until_idle()
    store = CalibrationStore(store_root)
    assert store.generation > 0
    assert store.decisions() == []  # no tuning, no decisions
    rows = svc.results(cid)
    assert all("tuned_key" not in r for r in rows)


def test_autotuned_science_matches_untuned_service(tmp_path):
    plain = make_service(tmp_path / "plain")
    cid_p = plain.submit("alice", ladder())
    plain.run_until_idle()
    tuned = make_service(tmp_path / "tuned", autotune=True)
    cid_t = tuned.submit("alice", ladder())
    tuned.run_until_idle()
    shas_p = {r["sha256"] for r in plain.results(cid_p)}
    shas_t = {r["sha256"] for r in tuned.results(cid_t)}
    assert shas_p == shas_t != {None}
