"""The resident campaign service: tenancy, resume, cancel, e2e."""

import json

import pytest

from repro.sched import scaling_ladder
from repro.service import CampaignService, JournalJobStore


class FakeClock:
    """Deterministic monotonic clock: one tick per read."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


def make_service(root, workers=2, **kwargs):
    kwargs.setdefault("executor", "inline")
    kwargs.setdefault("sleep", lambda s: None)
    kwargs.setdefault("clock", FakeClock())
    return CampaignService(root, workers=workers, **kwargs)


def ladder(nodes=(4, 16)):
    return scaling_ladder(dataset="demo", machine="t3e",
                          node_counts=nodes, hours=1)


class TestSubmitRunStatus:
    def test_campaign_runs_to_done(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        cid = svc.submit("alice", ladder())
        assert svc.status(cid)["status"] == "queued"
        assert svc.run_until_idle() == 2
        status = svc.status(cid)
        assert status["status"] == "done"
        assert status["n_ok"] == status["n_jobs"] == 2
        rows = svc.results(cid)
        assert [r["status"] for r in rows] == ["ok", "ok"]
        assert len({r["sha256"] for r in rows}) == 1  # same science

    def test_empty_submission_rejected(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        with pytest.raises(ValueError):
            svc.submit("alice", [])

    def test_unknown_campaign_raises(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        with pytest.raises(KeyError):
            svc.status("c999999")

    def test_per_tenant_counters_and_queue_wait(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        svc.submit("alice", ladder())
        svc.run_until_idle()
        stats = svc.stats()
        c = stats["counters"]
        assert c["service:tenant:alice:submitted_jobs"] == 2
        assert c["service:tenant:alice:completed_jobs"] == 2
        assert c["service:tenant:alice:completed_campaigns"] == 1
        waits = stats["histograms"]["service:tenant:alice:queue_wait_s"]
        assert waits["count"] == 2
        assert waits["min"] >= 0.0
        assert stats["cache"]["total_entries"] > 0

    def test_cross_campaign_cache_hits(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        svc.submit("alice", ladder())
        svc.run_until_idle()
        cid = svc.submit("alice", ladder())
        svc.run_until_idle()
        rows = svc.results(cid)
        assert all(r["from_cache"] for r in rows)
        assert all(r["attempts"] == 0 for r in rows)


class TestCancel:
    def test_cancel_drops_queued_jobs(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        cid = svc.submit("alice", ladder((1, 4, 16, 64)))
        assert svc.cancel(cid) is True
        assert svc.status(cid)["status"] == "cancelled"
        assert svc.run_until_idle() == 0  # nothing left to run
        counters = svc.stats()["counters"]
        assert counters["service:tenant:alice:cancelled_jobs"] == 4

    def test_cancel_is_idempotent_and_terminal(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        cid = svc.submit("alice", ladder())
        assert svc.cancel(cid) is True
        assert svc.cancel(cid) is False
        svc.run_until_idle()
        assert svc.status(cid)["status"] == "cancelled"

    def test_cancelled_campaign_survives_restart(self, tmp_path):
        svc = make_service(tmp_path / "svc")
        cid = svc.submit("alice", ladder())
        svc.cancel(cid)
        svc2 = make_service(tmp_path / "svc")
        assert svc2.status(cid)["status"] == "cancelled"
        assert svc2.run_until_idle() == 0


class TestCrashRecovery:
    def test_torn_journal_line_resume_no_duplicate_execution(
            self, tmp_path):
        root = tmp_path / "svc"
        svc = make_service(root, workers=2)
        cid = svc.submit("alice", ladder((1, 4, 16, 64)))
        assert svc.run_wave() == 2  # first wave only: 2 of 4 jobs

        # crash mid-append: a torn, newline-less partial job event
        store = JournalJobStore(root)
        with store.journal_path.open("a") as fh:
            fh.write('{"type": "job", "cid": "c000001", "key": "dead')

        svc2 = make_service(root, workers=2)
        status = svc2.status(cid)
        assert status["status"] == "running"
        assert status["n_done"] == 2   # wave-1 outcomes were durable
        assert status["queued"] == 2   # only the unfinished jobs re-queue
        assert svc2.run_until_idle() == 2
        assert svc2.status(cid)["status"] == "done"

        # no duplicated execution: the resumed service dispatched only
        # the two unfinished jobs, and their science was already warm
        # in the shared cache so they replayed without new numerics
        counters = svc2.stats()["counters"]
        assert counters["service:tenant:alice:completed_jobs"] == 2
        assert counters.get("campaign:sim_hours", 0) == 0
        rows = svc2.results(cid)
        assert len(rows) == 4
        assert all(r["status"] in ("ok", "cached") for r in rows)
        shas = {r["sha256"] for r in rows}
        assert len(shas) == 1  # bitwise-identical science across the crash

    def test_compacted_state_resumes_identically(self, tmp_path):
        root = tmp_path / "svc"
        svc = make_service(root)
        cid = svc.submit("alice", ladder())
        svc.run_until_idle()
        svc.compact()
        svc2 = make_service(root)
        assert svc2.status(cid)["status"] == "done"
        assert len(svc2.results(cid)) == 2


class TestMultiTenantE2E:
    def test_overlap_resolves_from_cache_and_fair_share_interleaves(
            self, tmp_path):
        root = tmp_path / "svc"
        svc = make_service(root, workers=1)  # 1-job waves: strict order

        # tenant A's first sweep executes the shared science
        warm = svc.submit("alice", ladder((4, 16)))
        svc.run_until_idle()
        assert svc.status(warm)["status"] == "done"

        # now both tenants submit concurrently: B's sweep overlaps the
        # warm jobs, plus both bring fresh work
        cid_a = svc.submit("alice", ladder((1, 64)))
        cid_b = svc.submit("bob", ladder((4, 16, 32, 128)))
        svc.run_until_idle()
        assert svc.status(cid_a)["status"] == "done"
        assert svc.status(cid_b)["status"] == "done"

        # B's shared-science jobs resolved from the cache: zero attempts
        rows_b = {r["job"]: r for r in svc.results(cid_b)}
        for job in ("demo:t3e/P4", "demo:t3e/P16"):
            assert rows_b[job]["from_cache"] is True
            assert rows_b[job]["attempts"] == 0
        for job in ("demo:t3e/P32", "demo:t3e/P128"):
            assert rows_b[job]["from_cache"] is False
            assert rows_b[job]["status"] == "ok"

        # fair-share interleave: the journal's job-event order is the
        # dispatch order; with equal weights the tenants alternate
        # until alice's two jobs drain
        events = [
            e for e in JournalJobStore(root).events() if e["type"] == "job"
        ]
        phase2 = [e["cid"] for e in events[2:]]  # skip the warm sweep
        tenants = ["alice" if c == cid_a else "bob" for c in phase2]
        assert tenants[:4] == ["alice", "bob", "alice", "bob"]

        # every result is bitwise identical to the single-science run
        all_shas = {e["row"]["sha256"] for e in events}
        assert len(all_shas) == 1

    def test_in_wave_sharing_across_tenants(self, tmp_path):
        # the same key submitted by two tenants and dispatched in one
        # wave executes once; both campaigns get the outcome
        svc = make_service(tmp_path / "svc", workers=2)
        cid_a = svc.submit("alice", ladder((4,)))
        cid_b = svc.submit("bob", ladder((4,)))
        assert svc.run_wave() == 2  # two queue items, one unique job
        assert svc.status(cid_a)["status"] == "done"
        assert svc.status(cid_b)["status"] == "done"
        counters = svc.stats()["counters"]
        assert counters["campaign:jobs"] == 1  # executed once
        assert counters["service:tenant:alice:completed_jobs"] == 1
        assert counters["service:tenant:bob:completed_jobs"] == 1


class TestDaemonThread:
    def test_background_loop_drains_submissions(self, tmp_path):
        svc = CampaignService(tmp_path / "svc", workers=2,
                              executor="inline")
        svc.start()
        try:
            cid = svc.submit("alice", ladder())
            import time
            deadline = time.monotonic() + 30.0
            while (svc.status(cid)["status"] not in
                   ("done", "failed") and time.monotonic() < deadline):
                time.sleep(0.01)
            assert svc.status(cid)["status"] == "done"
        finally:
            svc.stop()
        # graceful stop compacted the journal into the snapshot
        store = JournalJobStore(tmp_path / "svc")
        assert store.journal_path.read_text() == ""
        assert json.loads(store.snapshot_path.read_text())["events"]
