"""Tests for the span tracer: nesting, clocks, emission rules."""

import pytest

from repro.observe import Tracer


class FakeClock:
    """A settable clock for deterministic region spans."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestSpanNesting:
    def test_regions_nest_and_parent(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("hour:06", kind="hour") as hour:
            clock.t = 1.0
            with tracer.span("step:0", kind="step") as step:
                clock.t = 3.0
            clock.t = 4.0
        assert hour.parent_id is None
        assert step.parent_id == hour.span_id
        assert (step.start, step.end) == (1.0, 3.0)
        assert (hour.start, hour.end) == (0.0, 4.0)

    def test_emitted_spans_parent_under_open_region(self):
        tracer = Tracer(clock=FakeClock())
        outside = tracer.emit("a", "compute", 0.0, 1.0, node=0)
        with tracer.span("region") as region:
            inside = tracer.emit("b", "compute", 0.0, 1.0, node=1)
        assert outside.parent_id is None
        assert inside.parent_id == region.span_id

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                raise RuntimeError("boom")
        assert tracer.current_span() is None
        # The span was still closed and recorded.
        assert [s.name for s in tracer.spans] == ["outer"]

    def test_sibling_regions_share_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("hour") as hour:
            with tracer.span("step:0") as s0:
                pass
            with tracer.span("step:1") as s1:
                pass
        assert s0.parent_id == hour.span_id
        assert s1.parent_id == hour.span_id
        assert s0.span_id != s1.span_id

    def test_per_span_clock_override(self):
        tracer = Tracer(clock=FakeClock(100.0))
        local = FakeClock(5.0)
        with tracer.span("stage", clock=local) as span:
            local.t = 8.0
        assert (span.start, span.end) == (5.0, 8.0)


class TestEmit:
    def test_rejects_negative_duration(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.emit("x", "compute", 2.0, 1.0)

    def test_busy_defaults_to_duration(self):
        tracer = Tracer()
        span = tracer.emit("x", "comm", 1.0, 4.0, node=2)
        assert span.busy_seconds == pytest.approx(3.0)
        busy = tracer.emit("y", "comm", 1.0, 4.0, node=2, busy=0.5)
        assert busy.busy_seconds == pytest.approx(0.5)

    def test_attrs_recorded(self):
        tracer = Tracer()
        span = tracer.emit("x", "compute", 0.0, 1.0, node=0, ops=42.0)
        assert span.attrs["ops"] == 42.0

    def test_filter_and_aggregates(self):
        tracer = Tracer()
        tracer.emit("chemistry", "compute", 0.0, 2.0, node=0, busy=2.0)
        tracer.emit("chemistry", "compute", 0.0, 1.0, node=1, busy=1.0)
        tracer.emit("x", "comm", 2.0, 3.0, node=0, busy=0.25)
        assert len(tracer.filter(name="chemistry")) == 2
        assert len(tracer.filter(kind="comm")) == 1
        assert len(tracer.filter(node=1)) == 1
        by_node = tracer.busy_by_node()
        assert by_node[0]["compute"] == pytest.approx(2.0)
        assert by_node[0]["comm"] == pytest.approx(0.25)
        assert by_node[1] == {"compute": pytest.approx(1.0)}
        assert tracer.total_time() == pytest.approx(3.0)


class TestPhaseAccounting:
    def test_phase_totals_accumulate(self):
        tracer = Tracer()
        tracer.observe_phase("chemistry", "compute", 2.0)
        tracer.observe_phase("chemistry", "compute", 3.0)
        tracer.observe_phase("D_Chem->D_Repl", "comm", 1.0)
        assert tracer.time_by_phase() == {
            "chemistry": pytest.approx(5.0),
            "D_Chem->D_Repl": pytest.approx(1.0),
        }
        assert tracer.time_by_kind() == {
            "compute": pytest.approx(5.0),
            "comm": pytest.approx(1.0),
        }
        assert tracer.phase_counts[("compute", "chemistry")] == 2

    def test_wall_clock_default(self):
        tracer = Tracer()
        with tracer.span("real"):
            pass
        (span,) = tracer.spans
        assert span.end >= span.start >= 0.0
