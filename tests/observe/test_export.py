"""Tests for the Chrome-trace and CSV exporters."""

import csv
import json

import pytest

from repro.observe import (
    Tracer,
    chrome_trace,
    chrome_trace_events,
    csv_rows,
    write_chrome_trace,
    write_csv,
)
from repro.observe.export import CSV_HEADER
from repro.vm import Cluster, MachineSpec, Transfer

TOY = MachineSpec("toy", latency=1.0, gap=0.5, copy_cost=0.25,
                  seconds_per_op=1.0, io_seconds_per_byte=1.0)


def small_run() -> Tracer:
    cluster = Cluster(TOY, 3)
    tracer = cluster.tracer
    with tracer.span("hour:06", kind="hour", hour=6):
        cluster.charge_compute("chemistry", {0: 2.0, 1: 1.0, 2: 3.0})
        cluster.charge_communication("D_Chem->D_Repl", [Transfer(0, 1, 16)])
        cluster.charge_io("io:out", nbytes=4, node_id=0,
                          blocking_group=range(3))
    return tracer


REQUIRED_EVENT_KEYS = {"name", "ph", "pid", "tid"}


class TestChromeTrace:
    def test_schema_validity(self):
        tracer = small_run()
        doc = chrome_trace(tracer)
        # Serialisable, and structurally a Chrome trace (object form).
        parsed = json.loads(json.dumps(doc))
        assert isinstance(parsed["traceEvents"], list)
        for ev in parsed["traceEvents"]:
            assert REQUIRED_EVENT_KEYS <= set(ev)
            assert ev["ph"] in ("X", "M")
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] == "X":
                assert ev["ts"] >= 0
                assert ev["dur"] >= 0
                assert ev["cat"]

    def test_one_complete_event_per_span(self):
        tracer = small_run()
        events = [e for e in chrome_trace_events(tracer) if e["ph"] == "X"]
        assert len(events) == len(tracer.spans)

    def test_node_and_program_threads_named(self):
        tracer = small_run()
        meta = {
            e["tid"]: e["args"]["name"]
            for e in chrome_trace_events(tracer)
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert meta[0] == "node 0"
        assert meta[2] == "node 2"
        assert "program" in meta.values()

    def test_timestamps_are_microseconds(self):
        tracer = Tracer()
        tracer.emit("x", "compute", 1.5, 2.0, node=0, busy=0.5)
        (ev,) = [e for e in chrome_trace_events(tracer) if e["ph"] == "X"]
        assert ev["ts"] == pytest.approx(1.5e6)
        assert ev["dur"] == pytest.approx(0.5e6)

    def test_durations_are_busy_seconds(self):
        """Collective waits are gaps, not painted-over busy time."""
        tracer = Tracer()
        tracer.emit("x", "comm", 0.0, 10.0, node=0, busy=2.0)
        (ev,) = [e for e in chrome_trace_events(tracer) if e["ph"] == "X"]
        assert ev["dur"] == pytest.approx(2.0e6)
        assert ev["args"]["busy_s"] == pytest.approx(2.0)
        assert ev["args"]["phase_end_s"] == pytest.approx(10.0)

    def test_counters_in_other_data(self):
        doc = chrome_trace(small_run())
        counters = doc["otherData"]["counters"]
        assert counters["phases:compute"] == 1
        assert counters["messages_sent"] == 1

    def test_write_round_trip(self, tmp_path):
        path = write_chrome_trace(small_run(), tmp_path / "trace.json")
        parsed = json.loads(path.read_text())
        assert parsed["displayTimeUnit"] == "ms"
        assert parsed["traceEvents"]


class TestCsv:
    def test_header_and_rows(self, tmp_path):
        tracer = small_run()
        rows = csv_rows(tracer)
        assert len(rows) == len(tracer.spans)
        path = write_csv(tracer, tmp_path / "spans.csv")
        with path.open() as fh:
            parsed = list(csv.reader(fh))
        assert parsed[0] == CSV_HEADER
        assert len(parsed) == len(tracer.spans) + 1
        # start/end/duration columns parse back as floats.
        for row in parsed[1:]:
            float(row[5]), float(row[6]), float(row[7]), float(row[8])

    def test_region_rows_have_empty_node(self):
        tracer = small_run()
        by_name = {r[2]: r for r in csv_rows(tracer)}
        assert by_name["hour:06"][4] == ""
        assert by_name["chemistry"][4] != ""
