"""observed_makespan: queue-wait exclusion on the critical path."""

from repro.observe.compare import observed_makespan
from repro.observe.tracer import Span


def job_span(name, start, end, node, wait=None, kind="job"):
    attrs = {} if wait is None else {"queue_wait_s": wait}
    return Span(name=name, kind=kind, start=start, end=end, node=node,
                attrs=attrs)


def test_makespan_is_first_start_to_last_end():
    spans = [job_span("a", 0.0, 10.0, 0), job_span("b", 2.0, 8.0, 1)]
    assert observed_makespan(spans) == 10.0


def test_exclude_wait_subtracts_critical_worker_only():
    spans = [
        job_span("a", 0.0, 10.0, 0, wait=3.0),  # ends last: critical
        job_span("b", 0.0, 8.0, 1, wait=5.0),   # hidden behind worker 0
    ]
    assert observed_makespan(spans) == 10.0
    assert observed_makespan(spans, exclude_wait=True) == 7.0


def test_exclude_wait_sums_per_worker():
    spans = [
        job_span("a", 0.0, 4.0, 0, wait=1.0),
        job_span("b", 4.0, 10.0, 0, wait=2.0),
        job_span("c", 0.0, 5.0, 1, wait=4.0),
    ]
    assert observed_makespan(spans, exclude_wait=True) == 7.0


def test_wait_larger_than_span_clamps_to_zero():
    spans = [job_span("a", 0.0, 2.0, 0, wait=5.0)]
    assert observed_makespan(spans, exclude_wait=True) == 0.0


def test_spans_without_the_attribute_are_fine():
    spans = [job_span("a", 0.0, 3.0, 0), job_span("b", 1.0, 5.0, 1)]
    assert observed_makespan(spans, exclude_wait=True) == 5.0


def test_kinds_filter_applies_before_wait_accounting():
    spans = [
        job_span("a", 0.0, 6.0, 0, wait=1.0),
        job_span("hour", 0.0, 50.0, 0, wait=9.0, kind="hour"),
    ]
    assert observed_makespan(spans, kinds=("job",)) == 6.0
    assert observed_makespan(spans, kinds=("job",), exclude_wait=True) == 5.0
    assert observed_makespan(spans, kinds=("nope",)) == 0.0
