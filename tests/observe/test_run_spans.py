"""End-to-end span coverage for a data-parallel replay.

The acceptance invariant lives here: per-phase durations in the
exported Chrome trace must agree with the ``UtilizationReport`` totals
computed from the timeline, because both are views of the same charges.
"""

import collections

import pytest

from repro.model import replay_data_parallel
from repro.observe import Tracer, chrome_trace_events
from repro.vm import get_machine, usage_from_spans, utilization

NODES = 4

EXPECTED_PHASES = {
    ("compute", "transport"),
    ("compute", "chemistry"),
    ("compute", "aerosol"),
    ("comm", "D_Repl->D_Trans"),
    ("comm", "D_Trans->D_Chem"),
    ("comm", "D_Chem->D_Repl"),
    ("comm", "gather:outputhour"),
    ("io", "io:inputhour"),
    ("io", "io:pretrans"),
    ("io", "io:outputhour"),
}


@pytest.fixture(scope="module")
def traced_replay(tiny_trace):
    tracer = Tracer()
    timing = replay_data_parallel(tiny_trace, get_machine("t3e"), NODES,
                                  tracer=tracer)
    return tracer, timing


class TestSpanSet:
    def test_expected_phase_spans_emitted(self, traced_replay):
        tracer, _ = traced_replay
        emitted = {(s.kind, s.name) for s in tracer.spans}
        assert EXPECTED_PHASES <= emitted
        # Region spans bracket the node-level phases.
        hours = {n for k, n in emitted if k == "hour"}
        steps = {n for k, n in emitted if k == "step"}
        assert hours == {"hour:07", "hour:08", "hour:09"}
        assert steps and all(n.startswith("step:") for n in steps)

    def test_phase_spans_cover_every_node(self, traced_replay):
        tracer, _ = traced_replay
        for name in ("transport", "chemistry", "D_Trans->D_Chem"):
            nodes = {s.node for s in tracer.filter(name=name)}
            assert nodes == set(range(NODES))

    def test_steps_nest_under_hours(self, traced_replay):
        tracer, _ = traced_replay
        by_id = {s.span_id: s for s in tracer.spans}
        steps = tracer.filter(kind="step")
        assert steps
        for s in steps:
            assert by_id[s.parent_id].kind == "hour"

    def test_span_times_bounded_by_total(self, traced_replay):
        tracer, timing = traced_replay
        assert tracer.total_time() == pytest.approx(timing.total_time)
        for s in tracer.spans:
            assert 0.0 <= s.start <= s.end <= timing.total_time + 1e-9


class TestAgreementWithUtilization:
    def test_phase_totals_match_timing_breakdown(self, traced_replay, tiny_trace):
        tracer, timing = traced_replay
        by_kind = tracer.time_by_kind()
        assert by_kind["io"] == pytest.approx(timing.component("io"))
        assert by_kind["comm"] == pytest.approx(
            timing.component("communication")
        )
        assert sum(by_kind.values()) == pytest.approx(
            sum(timing.breakdown.values())
        )

    def test_chrome_durations_match_utilization_buckets(self, traced_replay):
        """Sum of exported per-node durs == UtilizationReport buckets."""
        tracer, _ = traced_replay
        report = utilization_from_replay(tracer)
        observed = collections.defaultdict(lambda: collections.defaultdict(float))
        for ev in chrome_trace_events(tracer):
            if ev["ph"] != "X":
                continue
            kind = ev["args"]["kind"]
            if kind not in ("compute", "io", "comm"):
                continue  # region spans live on the driver thread
            observed[ev["tid"]][kind] += ev["dur"] / 1e6
        for node_id, usage in report.nodes.items():
            assert observed[node_id]["compute"] == pytest.approx(usage.compute)
            assert observed[node_id]["io"] == pytest.approx(usage.io)
            assert observed[node_id]["comm"] == pytest.approx(usage.comm)

    def test_span_report_matches_timeline_report(self, tiny_trace):
        from repro.fx.runtime import FxRuntime
        from repro.model.dataparallel import HourReplayer

        rt = FxRuntime(get_machine("t3e"), NODES)
        replayer = HourReplayer(rt.world, tiny_trace)
        for hour in tiny_trace.hours:
            rt.sequential_io("io:inputhour", hour.input_bytes,
                             ops=hour.input_ops)
            replayer.run_hour(hour)
        a = utilization(rt.timeline, NODES)
        b = usage_from_spans(rt.tracer.spans, NODES)
        assert b.utilization == pytest.approx(a.utilization)
        assert b.comm_fraction == pytest.approx(a.comm_fraction)
        assert b.load_imbalance == pytest.approx(a.load_imbalance)


def utilization_from_replay(tracer):
    return usage_from_spans(tracer.spans, NODES)
