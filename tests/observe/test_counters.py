"""Tests for counter/histogram aggregation over the event stream."""

import pytest

from repro.observe import CounterSet, Tracer
from repro.vm.traffic import NodeTraffic


class TestCounter:
    def test_inc_accumulates(self):
        cs = CounterSet()
        cs.inc("messages_sent", 3)
        cs.inc("messages_sent", 2)
        assert cs.value("messages_sent") == 5

    def test_missing_counter_reads_zero(self):
        assert CounterSet().value("nope") == 0.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().inc("x", -1)


class TestHistogram:
    def test_summary_stats(self):
        cs = CounterSet()
        for v in (2.0, 4.0, 9.0):
            cs.observe("phase_seconds:chemistry", v)
        h = cs.histogram("phase_seconds:chemistry")
        assert h.count == 3
        assert h.total == pytest.approx(15.0)
        assert h.mean == pytest.approx(5.0)
        assert (h.min, h.max) == (2.0, 9.0)

    def test_empty_histogram(self):
        h = CounterSet().histogram("empty")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.to_dict()["min"] == 0.0


class TestPhaseFeeding:
    def test_redistributions_counted_by_arrow_name(self):
        tracer = Tracer()
        tracer.observe_phase("D_Repl->D_Trans", "comm", 0.1)
        tracer.observe_phase("D_Trans->D_Chem", "comm", 0.1)
        tracer.observe_phase("gather:outputhour", "comm", 0.1)
        assert tracer.counters.value("redistributions") == 2
        assert tracer.counters.value("phases:comm") == 3

    def test_traffic_totals(self):
        tracer = Tracer()
        traffic = {
            0: NodeTraffic(messages_sent=2, bytes_sent=100),
            1: NodeTraffic(messages_received=2, bytes_received=100,
                           bytes_copied=7),
        }
        tracer.observe_phase("x", "comm", 0.5, traffic=traffic)
        c = tracer.counters
        assert c.value("messages_sent") == 2
        assert c.value("messages_received") == 2
        assert c.value("bytes_sent") == 100
        assert c.value("bytes_received") == 100
        assert c.value("bytes_copied") == 7

    def test_snapshot_shape(self):
        tracer = Tracer()
        tracer.observe_phase("chemistry", "compute", 1.0)
        snap = tracer.counters.snapshot()
        assert snap["counters"]["phases:compute"] == 1
        assert snap["histograms"]["phase_seconds:chemistry"]["total"] == 1.0


class TestClusterFeedsCounters:
    def test_counts_match_planner_traffic(self):
        """Cluster phases drive the same totals the timeline records."""
        from repro.vm import Cluster, MachineSpec, Transfer

        toy = MachineSpec("toy", latency=1.0, gap=0.5, copy_cost=0.25,
                          seconds_per_op=1.0, io_seconds_per_byte=1.0)
        cluster = Cluster(toy, 2)
        cluster.charge_compute("w", {0: 1.0, 1: 2.0})
        cluster.charge_communication(
            "D_Trans->D_Chem", [Transfer(0, 1, 64), Transfer(0, 0, 8)]
        )
        cluster.charge_io("io:in", nbytes=4, node_id=0)
        c = cluster.tracer.counters
        assert c.value("messages_sent") == 1
        assert c.value("bytes_sent") == 64
        assert c.value("bytes_copied") == 8
        assert c.value("redistributions") == 1
        assert c.value("phases:compute") == 1
        assert c.value("phases:io") == 1
        # Per-phase wall-time totals mirror the timeline.
        assert cluster.tracer.time_by_phase() == pytest.approx(
            cluster.timeline.time_by_name()
        )
