"""Tests for the closed-form communication model vs the exact simulator."""

import math

import pytest

from repro.fx import Distribution, plan_redistribution
from repro.perfmodel import ArrayGeometry, CommunicationModel
from repro.vm import CRAY_T3E, Cluster

GEO = ArrayGeometry(species=35, layers=5, npoints=700, wordsize=8)


@pytest.fixture
def model():
    return CommunicationModel(CRAY_T3E, GEO)


class TestClosedForms:
    def test_repl_to_trans_formula(self, model):
        """Ct = H * ceil(layers/min(layers,P)) * species * nodes * W."""
        for P in (2, 4, 8, 64):
            expected = CRAY_T3E.copy_cost * math.ceil(5 / min(5, P)) * 35 * 700 * 8
            assert model.repl_to_trans(P) == pytest.approx(expected)

    def test_repl_to_trans_drops_then_flattens(self, model):
        """LA: 2 layers/node at P=4 -> 1 at P=8, constant after."""
        assert model.repl_to_trans(4) == pytest.approx(2 * model.repl_to_trans(8))
        assert model.repl_to_trans(8) == model.repl_to_trans(128)

    def test_trans_to_chem_latency_grows_with_P(self, model):
        """Beyond P=layers the byte term is constant, latency rises."""
        c8, c128 = model.trans_to_chem(8), model.trans_to_chem(128)
        assert c128 > c8
        assert c128 - c8 == pytest.approx(CRAY_T3E.latency * 120)

    def test_chem_to_repl_is_most_expensive(self, model):
        """Figure 5: the all-gather dominates the three steps."""
        for P in (4, 8, 32, 128):
            chem_repl = model.chem_to_repl(P)
            assert chem_repl > model.trans_to_chem(P)
            assert chem_repl > model.repl_to_trans(P)

    def test_chem_to_repl_formula(self, model):
        P = 16
        expected = 2 * CRAY_T3E.latency * P + CRAY_T3E.gap * 35 * 5 * 700 * 8
        assert model.chem_to_repl(P) == pytest.approx(expected)

    def test_cost_dispatch(self, model):
        assert model.cost("D_Repl->D_Trans", 8) == model.repl_to_trans(8)
        assert set(model.all_costs(8)) == set(model.STEP_NAMES)
        with pytest.raises(KeyError):
            model.cost("D_Foo->D_Bar", 8)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ArrayGeometry(species=0, layers=5, npoints=700)
        with pytest.raises(ValueError):
            GEO.max_layer_block_bytes(0)


class TestClosedFormVsExactSimulator:
    """The paper's formulas approximate the exact transfer sets well."""

    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    def test_repl_to_trans_matches_simulator(self, model, P):
        t = self._simulate(Distribution.replicated(3), Distribution.block(3, 1), P)
        assert t == pytest.approx(model.repl_to_trans(P), rel=1e-9)

    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    def test_trans_to_chem_close_to_simulator(self, model, P):
        t = self._simulate(Distribution.block(3, 1), Distribution.block(3, 2), P)
        # The formula counts the sender's whole block (it keeps a tile
        # locally) but ignores received messages; agreement within ~10%
        # except at very small P where the local tile is large.
        assert t == pytest.approx(model.trans_to_chem(P), rel=0.35)
        assert t <= model.trans_to_chem(P) * 1.10

    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    def test_chem_to_repl_close_to_simulator(self, model, P):
        t = self._simulate(Distribution.block(3, 2), Distribution.replicated(3), P)
        # Formula counts the full array received; exact receive misses
        # the node's own block (factor (P-1)/P) plus an H copy term.
        assert t == pytest.approx(model.chem_to_repl(P), rel=0.6)

    @staticmethod
    def _simulate(src, dst, P) -> float:
        cluster = Cluster(CRAY_T3E, P)
        plan = plan_redistribution(
            src.layout((35, 5, 700), P), dst.layout((35, 5, 700), P), 8
        )
        rec = cluster.charge_communication("x", list(plan.transfers),
                                           node_ids=range(P))
        return rec.duration
