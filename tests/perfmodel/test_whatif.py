"""Tests for the machine-balance what-if studies."""

import pytest

from repro.perfmodel.whatif import (
    BalancePoint,
    comm_fraction_sweep,
    network_balance_margin,
)
from repro.vm import CRAY_T3E


class TestCommFractionSweep:
    def test_fraction_monotone_in_network_slowdown(self, tiny_trace):
        sweep = comm_fraction_sweep(
            tiny_trace, CRAY_T3E, 16, [1.0, 4.0, 16.0, 64.0]
        )
        vals = [sweep[f] for f in (1.0, 4.0, 16.0, 64.0)]
        assert vals == sorted(vals)
        assert all(0.0 < v < 1.0 for v in vals)

    def test_base_fraction_is_small(self, tiny_trace):
        """On the calibrated machines communication is a small share —
        the paper's 'balanced architectures' observation."""
        sweep = comm_fraction_sweep(tiny_trace, CRAY_T3E, 16, [1.0])
        assert sweep[1.0] < 0.15

    def test_bad_factor_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            comm_fraction_sweep(tiny_trace, CRAY_T3E, 8, [0.0])


class TestBalanceMargin:
    def test_margin_exists_and_is_consistent(self, tiny_trace):
        bp = network_balance_margin(tiny_trace, CRAY_T3E, 16, threshold=0.25)
        assert isinstance(bp, BalancePoint)
        assert bp.slowdown_factor > 1.0
        # At the crossing factor the fraction is ~ the threshold.
        frac = comm_fraction_sweep(
            tiny_trace, CRAY_T3E, 16, [bp.slowdown_factor]
        )[bp.slowdown_factor]
        assert frac == pytest.approx(0.25, abs=0.02)

    def test_margin_shrinks_with_more_nodes(self, tiny_trace):
        """More nodes -> less compute per node -> thinner margin."""
        m4 = network_balance_margin(tiny_trace, CRAY_T3E, 4).slowdown_factor
        m32 = network_balance_margin(tiny_trace, CRAY_T3E, 32).slowdown_factor
        assert m32 < m4

    def test_already_over_threshold(self, tiny_trace):
        bp = network_balance_margin(tiny_trace, CRAY_T3E, 16, threshold=1e-6)
        assert bp.slowdown_factor == 1.0

    def test_bad_threshold(self, tiny_trace):
        with pytest.raises(ValueError):
            network_balance_margin(tiny_trace, CRAY_T3E, 8, threshold=1.5)
