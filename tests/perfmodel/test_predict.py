"""Tests for the computation model, calibration and the full predictor."""

import numpy as np
import pytest

from repro.model import replay_data_parallel
from repro.perfmodel import (
    PerformancePredictor,
    block_phase_time,
    fit_comm_parameters,
    fit_compute_rate,
    simple_phase_time,
)
from repro.vm import CRAY_T3E, INTEL_PARAGON, Cluster, MachineSpec, Transfer

sys_machine = MachineSpec("unit", latency=1.0, gap=1.0, copy_cost=1.0,
                          seconds_per_op=1.0, io_seconds_per_byte=1.0)


class TestComputationModel:
    def test_simple_model_amdahl(self):
        t = simple_phase_time(CRAY_T3E, 1e6, parallelism=700, P=8)
        assert t == pytest.approx(CRAY_T3E.compute_cost(1e6) / 8)

    def test_simple_model_parallelism_cap(self):
        """5-way parallel work does not speed up past 5 nodes."""
        t5 = simple_phase_time(CRAY_T3E, 1e6, parallelism=5, P=5)
        t64 = simple_phase_time(CRAY_T3E, 1e6, parallelism=5, P=64)
        assert t64 == t5

    def test_simple_model_validation(self):
        with pytest.raises(ValueError):
            simple_phase_time(CRAY_T3E, 1.0, parallelism=0, P=4)

    def test_block_model_uneven_layers(self):
        """5 equal layers on 4 nodes: one node carries 2 -> 2/5 of seq."""
        ops = np.full(5, 100.0)
        t4 = block_phase_time(sys_machine, ops, 4)
        t8 = block_phase_time(sys_machine, ops, 8)
        assert t4 == pytest.approx(200.0)
        assert t8 == pytest.approx(100.0)
        assert block_phase_time(sys_machine, ops, 128) == pytest.approx(100.0)

    def test_block_model_skewed_points(self):
        ops = np.array([10.0, 1.0, 1.0, 1.0])
        assert block_phase_time(sys_machine, ops, 2) == pytest.approx(11.0)
        assert block_phase_time(sys_machine, ops, 4) == pytest.approx(10.0)

    def test_block_model_empty(self):
        assert block_phase_time(sys_machine, np.zeros(0), 4) == 0.0


class TestCalibration:
    def test_recovers_machine_constants(self):
        """Fit L, G, H from micro-benchmark-style comm phases.

        Like any calibration, the samples need to separate the terms:
        latency-bound phases (many tiny messages), bandwidth-bound
        phases (one big message) and copy-only phases.
        """
        cluster = Cluster(CRAY_T3E, 8)
        rng = np.random.default_rng(0)
        for i in range(36):
            kind = i % 3
            if kind == 0:  # latency probe: many 8-byte messages
                transfers = [Transfer(0, 1, 8, messages=int(rng.integers(5, 200)))]
            elif kind == 1:  # bandwidth probe: one large message
                transfers = [Transfer(0, 1, int(rng.integers(100_000, 5_000_000)))]
            else:  # copy probe
                transfers = [Transfer(2, 2, int(rng.integers(100_000, 5_000_000)))]
            cluster.charge_communication("probe", transfers, node_ids=range(8))
        fit = fit_comm_parameters([cluster.timeline])
        assert fit.latency == pytest.approx(CRAY_T3E.latency, rel=0.05)
        assert fit.gap == pytest.approx(CRAY_T3E.gap, rel=0.05)
        assert fit.copy_cost == pytest.approx(CRAY_T3E.copy_cost, rel=0.05)
        assert fit.samples == 36

    def test_recovers_copy_cost_from_copy_phases(self):
        cluster = Cluster(CRAY_T3E, 4)
        rng = np.random.default_rng(1)
        for _ in range(10):
            nb = int(rng.integers(10_000, 5_000_000))
            cluster.charge_communication(
                "copy", [Transfer(0, 0, nb)], node_ids=range(4)
            )
            cluster.charge_communication(
                "net", [Transfer(0, 1, nb)], node_ids=range(4)
            )
        fit = fit_comm_parameters([cluster.timeline])
        assert fit.copy_cost == pytest.approx(CRAY_T3E.copy_cost, rel=0.05)

    def test_fit_needs_samples(self):
        cluster = Cluster(CRAY_T3E, 2)
        with pytest.raises(ValueError):
            fit_comm_parameters([cluster.timeline])

    def test_compute_rate_fit(self):
        cluster = Cluster(CRAY_T3E, 4)
        cluster.charge_compute("w", {0: 1e6, 1: 2e6})
        cluster.charge_compute("w", {2: 5e5})
        rate = fit_compute_rate([cluster.timeline])
        assert rate == pytest.approx(CRAY_T3E.seconds_per_op, rel=1e-9)

    def test_compute_rate_needs_records(self):
        cluster = Cluster(CRAY_T3E, 2)
        with pytest.raises(ValueError):
            fit_compute_rate([cluster.timeline])


class TestPredictor:
    @pytest.fixture(scope="class")
    def predictor(self, tiny_trace):
        return PerformancePredictor(tiny_trace, CRAY_T3E)

    def test_prediction_close_to_simulation(self, tiny_trace, predictor):
        """Figure 6/7 claim: model tracks measurement across P."""
        for P in (1, 2, 4, 8, 16):
            measured = replay_data_parallel(tiny_trace, CRAY_T3E, P)
            predicted = predictor.predict(P)
            assert predicted.total == pytest.approx(
                measured.total_time, rel=0.15
            ), f"P={P}"
            pb = predicted.compute_breakdown()
            assert pb["chemistry"] == pytest.approx(
                measured.breakdown["chemistry"], rel=0.05
            )
            assert pb["transport"] == pytest.approx(
                measured.breakdown["transport"], rel=0.05
            )
            assert pb["io"] == pytest.approx(measured.breakdown["io"], rel=0.05)

    def test_computation_predictions_tighter_than_comm(self, tiny_trace, predictor):
        """Paper: 'values for the computation phases appear to be closer
        to the predictions than the communication phases'."""
        P = 8
        measured = replay_data_parallel(tiny_trace, CRAY_T3E, P)
        predicted = predictor.predict(P)
        comp_err = abs(
            predicted.compute_breakdown()["chemistry"]
            - measured.breakdown["chemistry"]
        ) / measured.breakdown["chemistry"]
        comm_err = abs(
            predicted.communication - measured.breakdown["communication"]
        ) / measured.breakdown["communication"]
        assert comp_err < comm_err

    def test_redistribution_counts(self, tiny_trace, predictor):
        counts = predictor.redistribution_counts()
        assert sum(counts.values()) == tiny_trace.expected_comm_steps()

    def test_speedup_curve_monotone(self, predictor):
        curve = predictor.speedup_curve([1, 2, 4, 8, 16])
        vals = list(curve.values())
        assert vals == sorted(vals)
        assert curve[1] == pytest.approx(1.0)

    def test_simple_vs_exact_models_agree_roughly(self, predictor):
        for P in (2, 8):
            exact = predictor.predict_total(P, exact=True)
            simple = predictor.predict_total(P, exact=False)
            assert simple == pytest.approx(exact, rel=0.35)

    def test_extrapolation_use_case(self, tiny_trace):
        """Calibrate at small P, predict large P (the paper's pitch)."""
        predictor = PerformancePredictor(tiny_trace, INTEL_PARAGON)
        measured64 = replay_data_parallel(tiny_trace, INTEL_PARAGON, 64)
        predicted64 = predictor.predict(64)
        assert predicted64.total == pytest.approx(measured64.total_time, rel=0.25)

    def test_invalid_P(self, predictor):
        with pytest.raises(ValueError):
            predictor.predict(0)
