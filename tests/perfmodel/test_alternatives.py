"""Tests for the uniform-grid alternative model."""

import pytest

from repro.perfmodel.alternatives import UniformAirshedModel, compare_grid_strategies
from repro.vm import CRAY_T3E

from tests.conftest import TINY_SPEC


@pytest.fixture(scope="module")
def tiny_grid():
    return TINY_SPEC.build().grid


class TestUniformModel:
    def test_point_ratio_above_one(self, tiny_trace, tiny_grid):
        model = UniformAirshedModel(tiny_trace, tiny_grid, CRAY_T3E)
        assert model.point_ratio > 1.0
        assert model.npoints_uniform == model.nx * model.ny

    def test_transport_parallelism(self, tiny_trace, tiny_grid):
        model = UniformAirshedModel(tiny_trace, tiny_grid, CRAY_T3E)
        assert model.transport_parallelism() == (
            tiny_trace.layers * min(model.nx, model.ny)
        )
        assert model.transport_parallelism() > tiny_trace.layers

    def test_predict_total_decreases_with_P(self, tiny_trace, tiny_grid):
        model = UniformAirshedModel(tiny_trace, tiny_grid, CRAY_T3E)
        times = [model.predict_total(P) for P in (1, 4, 16, 64)]
        assert times == sorted(times, reverse=True)

    def test_speedup_exceeds_multiscale(self, tiny_trace, tiny_grid):
        from repro.perfmodel import PerformancePredictor

        model = UniformAirshedModel(tiny_trace, tiny_grid, CRAY_T3E)
        ms = PerformancePredictor(tiny_trace, CRAY_T3E)
        P = 64
        ms_speedup = ms.predict_total(1) / ms.predict_total(P)
        assert model.speedup(P) > ms_speedup

    def test_mismatched_grid_rejected(self, tiny_trace):
        from repro.datasets import LA_SPEC

        la_grid = LA_SPEC.build().grid  # 700 points != tiny's 54
        with pytest.raises(ValueError):
            UniformAirshedModel(tiny_trace, la_grid, CRAY_T3E)

    def test_bad_P(self, tiny_trace, tiny_grid):
        model = UniformAirshedModel(tiny_trace, tiny_grid, CRAY_T3E)
        with pytest.raises(ValueError):
            model.predict_total(0)


class TestComparison:
    def test_structure(self, tiny_trace, tiny_grid):
        cmp = compare_grid_strategies(
            tiny_trace, tiny_grid, CRAY_T3E, node_counts=(1, 8)
        )
        assert set(cmp) == {1, 8}
        assert cmp[1]["multiscale_speedup"] == pytest.approx(1.0)
        assert cmp[1]["uniform_speedup"] == pytest.approx(1.0)

    def test_multiscale_wins_absolute_at_moderate_P(self, tiny_trace, tiny_grid):
        """The tiny grid's point ratio is only ~3.6, so the uniform
        variant crosses over at large P; below that, multiscale wins
        (the real LA/NE datasets have ratios 9-16 and no crossover
        through 256 nodes — see the grid-strategy ablation bench)."""
        cmp = compare_grid_strategies(
            tiny_trace, tiny_grid, CRAY_T3E, node_counts=(1, 8, 16)
        )
        for P, row in cmp.items():
            assert row["multiscale"] < row["uniform"]

    def test_crossover_moves_out_with_point_ratio(self, tiny_trace, tiny_grid):
        """More refinement contrast -> later (or no) crossover."""
        model = UniformAirshedModel(tiny_trace, tiny_grid, CRAY_T3E)

        def crossover(mdl, ms_predictor):
            for P in (1, 2, 4, 8, 16, 32, 64, 128, 256):
                if mdl.predict_total(P) < ms_predictor.predict_total(P):
                    return P
            return None

        from repro.perfmodel import PerformancePredictor

        ms = PerformancePredictor(tiny_trace, CRAY_T3E)
        x = crossover(model, ms)
        assert x is None or x >= 32
