"""Smoke tests: every example script runs to completion.

Marked slow (each runs real numerics for several simulated hours); run
with ``pytest -m slow`` or as part of the full suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "machine_comparison",
        "policy_scenario",
        "performance_prediction",
        "popexp_coupling",
        "diurnal_cycle",
        "campaign_sweep",
    } <= names
