"""Tests for task regions and pipelined stages (Section 5 machinery)."""

import pytest

from repro.fx import Pipeline, PipelineStage, split_cluster
from repro.vm import Cluster, MachineSpec

TOY = MachineSpec("toy", latency=1.0, gap=0.1, copy_cost=0.0,
                  seconds_per_op=1.0, io_seconds_per_byte=1.0)


class TestSplitCluster:
    def test_consecutive_partition(self):
        cluster = Cluster(TOY, 8)
        a, b, c = split_cluster(cluster, [1, 6, 1])
        assert a.node_ids == (0,)
        assert b.node_ids == (1, 2, 3, 4, 5, 6)
        assert c.node_ids == (7,)

    def test_leftover_nodes_allowed(self):
        cluster = Cluster(TOY, 8)
        (a,) = split_cluster(cluster, [3])
        assert a.node_ids == (0, 1, 2)

    def test_oversubscription_rejected(self):
        cluster = Cluster(TOY, 4)
        with pytest.raises(ValueError):
            split_cluster(cluster, [3, 2])

    def test_empty_group_rejected(self):
        cluster = Cluster(TOY, 4)
        with pytest.raises(ValueError):
            split_cluster(cluster, [0, 4])

    def test_empty_sizes_rejected(self):
        """No sizes at all must be a clear error, not zero subgroups."""
        cluster = Cluster(TOY, 4)
        with pytest.raises(ValueError, match="at least one subgroup"):
            split_cluster(cluster, [])


def make_stage(name, group, seconds):
    def run(i):
        group.charge_compute(name, {r: seconds for r in range(group.size)})
    return PipelineStage(name=name, group=group, run=run)


class TestPipeline:
    def test_single_stage_is_sequential(self):
        cluster = Cluster(TOY, 2)
        (g,) = split_cluster(cluster, [2])
        pipe = Pipeline(cluster, [make_stage("work", g, 3.0)])
        res = pipe.execute(4)
        assert res.makespan == pytest.approx(12.0)

    def test_two_stages_overlap(self):
        """Classic pipeline: makespan ~ fill + bottleneck * (n-1)."""
        cluster = Cluster(TOY, 2)
        a, b = split_cluster(cluster, [1, 1])
        pipe = Pipeline(cluster, [make_stage("in", a, 2.0), make_stage("main", b, 2.0)])
        res = pipe.execute(5)
        # Without overlap this would be 20s; pipelined: 2 + 5*2 = 12s.
        assert res.makespan == pytest.approx(12.0)

    def test_bottleneck_stage_paces_pipeline(self):
        cluster = Cluster(TOY, 2)
        a, b = split_cluster(cluster, [1, 1])
        pipe = Pipeline(cluster, [make_stage("in", a, 1.0), make_stage("main", b, 4.0)])
        res = pipe.execute(3)
        # fill (1s) + 3 * 4s
        assert res.makespan == pytest.approx(13.0)

    def test_transfer_costs_charged(self):
        cluster = Cluster(TOY, 2)
        a, b = split_cluster(cluster, [1, 1])
        st_a = make_stage("in", a, 1.0)
        st_a.output_bytes = lambda i: 100  # L + G*100 = 1 + 10 = 11s per item
        pipe = Pipeline(cluster, [st_a, make_stage("main", b, 1.0)])
        res = pipe.execute(2)
        # Handoffs serialise both groups: each item costs 1 (in) + 11
        # (send) + 1 (main); the second item's input overlaps main's work.
        assert res.makespan > 2 * (1 + 1)  # transfers definitely visible
        assert res.completion[("main", 0)] == pytest.approx(13.0)

    def test_completion_times_monotone(self):
        cluster = Cluster(TOY, 3)
        a, b, c = split_cluster(cluster, [1, 1, 1])
        pipe = Pipeline(
            cluster,
            [make_stage("in", a, 1.0), make_stage("main", b, 2.0),
             make_stage("out", c, 1.0)],
        )
        res = pipe.execute(4)
        for s in ("in", "main", "out"):
            times = [res.stage_completion(s, i) for i in range(4)]
            assert times == sorted(times)
        for i in range(4):
            assert (
                res.stage_completion("in", i)
                < res.stage_completion("main", i)
                < res.stage_completion("out", i)
            )

    def test_overlapping_groups_rejected(self):
        cluster = Cluster(TOY, 2)
        g = cluster.subgroup([0, 1])
        with pytest.raises(ValueError):
            Pipeline(cluster, [make_stage("a", g, 1.0), make_stage("b", g, 1.0)])

    def test_empty_pipeline_rejected(self):
        cluster = Cluster(TOY, 2)
        with pytest.raises(ValueError):
            Pipeline(cluster, [])

    def test_zero_items(self):
        cluster = Cluster(TOY, 2)
        (g,) = split_cluster(cluster, [2])
        res = Pipeline(cluster, [make_stage("w", g, 1.0)]).execute(0)
        assert res.makespan == 0.0
