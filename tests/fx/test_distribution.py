"""Tests for HPF-style distributions and ownership maps."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fx import Distribution


class TestDistributionConstruction:
    def test_replicated_spec(self):
        d = Distribution.replicated(3)
        assert d.is_replicated
        assert d.spec() == "(*,*,*)"

    def test_block_spec(self):
        assert Distribution.block(3, 1).spec() == "(*,BLOCK,*)"
        assert Distribution.block(3, 2).spec() == "(*,*,BLOCK)"

    def test_cyclic_spec(self):
        assert Distribution.cyclic(2, 0).spec() == "(CYCLIC,*)"
        assert Distribution.block_cyclic(2, 1, 4).spec() == "(*,CYCLIC(4))"

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            Distribution.block(2, 5)
        with pytest.raises(ValueError):
            Distribution(ndim=0)
        with pytest.raises(ValueError):
            Distribution.block_cyclic(2, 0, 0)


class TestBlockLayout:
    """HPF BLOCK: chunk size ceil(n/P); trailing nodes may be empty."""

    def test_even_partition(self):
        lay = Distribution.block(1, 0).layout((8,), 4)
        assert [lay.block_bounds(i) for i in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8)
        ]

    def test_uneven_partition_ceil_semantics(self):
        lay = Distribution.block(1, 0).layout((5,), 4)
        # ceil(5/4)=2: blocks 2,2,1,0
        assert [lay.local_count(i) for i in range(4)] == [2, 2, 1, 0]

    def test_more_procs_than_extent(self):
        """The Airshed transport situation: 5 layers, 128 nodes."""
        lay = Distribution.block(3, 1).layout((35, 5, 700), 128)
        counts = [len(lay.owned_indices(i)) for i in range(128)]
        assert sum(counts) == 5
        assert counts[:5] == [1, 1, 1, 1, 1]
        assert all(c == 0 for c in counts[5:])
        assert lay.degree_of_parallelism() == 5

    def test_other_size(self):
        lay = Distribution.block(3, 1).layout((35, 5, 700), 8)
        assert lay.other_size() == 35 * 700
        assert lay.local_count(0) == 35 * 700  # 1 layer each for P=8

    def test_max_local_count_matches_paper_ceil(self):
        """max local data = ceil(layers/min(layers,P)) * species * nodes."""
        for P in (2, 4, 8, 16):
            lay = Distribution.block(3, 1).layout((35, 5, 700), P)
            expected = math.ceil(5 / min(5, P)) * 35 * 700
            assert lay.max_local_count() == expected

    def test_owner_of(self):
        lay = Distribution.block(1, 0).layout((10,), 4)
        # ceil(10/4)=3: 0,1,2->n0; 3,4,5->n1; 6,7,8->n2; 9->n3
        assert [lay.owner_of(i) for i in range(10)] == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]
        with pytest.raises(ValueError):
            lay.owner_of(10)

    def test_local_slice_is_view(self):
        lay = Distribution.block(2, 0).layout((6, 3), 3)
        a = np.arange(18.0).reshape(6, 3)
        v = a[lay.local_slice(1)]
        assert np.shares_memory(v, a)
        assert np.array_equal(v, a[2:4])


class TestCyclicLayout:
    def test_cyclic_ownership(self):
        lay = Distribution.cyclic(1, 0).layout((7,), 3)
        assert list(lay.owned_indices(0)) == [0, 3, 6]
        assert list(lay.owned_indices(1)) == [1, 4]
        assert list(lay.owned_indices(2)) == [2, 5]

    def test_cyclic_owner_of(self):
        lay = Distribution.cyclic(1, 0).layout((7,), 3)
        for i in range(7):
            assert lay.owner_of(i) == i % 3

    def test_cyclic_local_slice(self):
        lay = Distribution.cyclic(1, 0).layout((7,), 3)
        a = np.arange(7)
        assert np.array_equal(a[lay.local_slice(1)], [1, 4])


class TestBlockCyclicLayout:
    def test_block_cyclic_ownership(self):
        lay = Distribution.block_cyclic(1, 0, 2).layout((10,), 2)
        assert list(lay.owned_indices(0)) == [0, 1, 4, 5, 8, 9]
        assert list(lay.owned_indices(1)) == [2, 3, 6, 7]

    def test_block_cyclic_owner_of(self):
        lay = Distribution.block_cyclic(1, 0, 2).layout((10,), 2)
        assert [lay.owner_of(i) for i in range(10)] == [0, 0, 1, 1, 0, 0, 1, 1, 0, 0]

    def test_block_cyclic_no_view(self):
        lay = Distribution.block_cyclic(1, 0, 2).layout((10,), 2)
        with pytest.raises(ValueError):
            lay.local_slice(0)


class TestReplicatedLayout:
    def test_everyone_holds_everything(self):
        lay = Distribution.replicated(3).layout((35, 5, 700), 16)
        assert lay.is_replicated
        assert lay.local_count(7) == 35 * 5 * 700
        assert lay.degree_of_parallelism() == 1

    def test_owned_indices_undefined(self):
        lay = Distribution.replicated(2).layout((4, 4), 2)
        with pytest.raises(ValueError):
            lay.owned_indices(0)

    def test_local_slice_full(self):
        lay = Distribution.replicated(2).layout((4, 4), 2)
        a = np.arange(16.0).reshape(4, 4)
        assert np.array_equal(a[lay.local_slice(1)], a)


class TestLayoutValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Distribution.block(2, 0).layout((3,), 2)

    def test_bad_nprocs(self):
        with pytest.raises(ValueError):
            Distribution.block(1, 0).layout((4,), 0)

    def test_negative_extent(self):
        with pytest.raises(ValueError):
            Distribution.block(1, 0).layout((-1,), 2)

    def test_node_out_of_range(self):
        lay = Distribution.block(1, 0).layout((4,), 2)
        with pytest.raises(ValueError):
            lay.owned_indices(2)


# ---------------------------------------------------------------------------
# Property-based: ownership is a partition for every distribution kind.
# ---------------------------------------------------------------------------
dist_kinds = st.sampled_from(["block", "cyclic", "block_cyclic"])


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=64),
    nprocs=st.integers(min_value=1, max_value=12),
    kind=dist_kinds,
    block_size=st.integers(min_value=1, max_value=5),
)
def test_ownership_partitions_indices(n, nprocs, kind, block_size):
    """Every index is owned by exactly one node."""
    if kind == "block":
        d = Distribution.block(1, 0)
    elif kind == "cyclic":
        d = Distribution.cyclic(1, 0)
    else:
        d = Distribution.block_cyclic(1, 0, block_size)
    lay = d.layout((n,), nprocs)
    all_owned = np.concatenate(
        [lay.owned_indices(i) for i in range(nprocs)]
    ) if nprocs else np.array([])
    assert sorted(all_owned.tolist()) == list(range(n))
    # owner_of agrees with owned_indices
    for i in range(nprocs):
        for idx in lay.owned_indices(i):
            assert lay.owner_of(int(idx)) == i


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=64),
    nprocs=st.integers(min_value=1, max_value=12),
    kind=dist_kinds,
    block_size=st.integers(min_value=1, max_value=5),
)
def test_max_local_count_is_true_maximum(n, nprocs, kind, block_size):
    if kind == "block":
        d = Distribution.block(1, 0)
    elif kind == "cyclic":
        d = Distribution.cyclic(1, 0)
    else:
        d = Distribution.block_cyclic(1, 0, block_size)
    lay = d.layout((n,), nprocs)
    assert lay.max_local_count() == max(lay.local_count(i) for i in range(nprocs))


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    nprocs=st.integers(min_value=1, max_value=10),
)
def test_degree_of_parallelism_counts_nonempty_nodes(n, nprocs):
    lay = Distribution.block(1, 0).layout((n,), nprocs)
    nonempty = sum(1 for i in range(nprocs) if lay.local_count(i) > 0)
    assert lay.degree_of_parallelism() == min(n, nprocs)
    # For BLOCK with ceil semantics, non-empty node count can be less
    # than min(n, P) (e.g. n=5, P=4 -> 3 non-empty), but never more.
    assert nonempty <= lay.degree_of_parallelism()
