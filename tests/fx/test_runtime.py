"""Tests for the FxRuntime façade."""

import numpy as np
import pytest

from repro.fx import Distribution, FxRuntime, dist_label
from repro.vm import CRAY_T3E, MachineSpec

TOY = MachineSpec("toy", latency=1.0, gap=0.1, copy_cost=0.01,
                  seconds_per_op=1.0, io_seconds_per_byte=0.5)


class TestDistLabel:
    def test_airshed_names(self):
        assert dist_label(Distribution.replicated(3)) == "D_Repl"
        assert dist_label(Distribution.block(3, 1)) == "D_Trans"
        assert dist_label(Distribution.block(3, 2)) == "D_Chem"
        assert dist_label(Distribution.block(3, 0)) == "D_dim0"


class TestRuntime:
    def test_redistribute_charges_named_phase(self):
        rt = FxRuntime(TOY, 4)
        arr = rt.darray("A", np.zeros((3, 5, 11)), Distribution.replicated(3))
        rec = rt.redistribute(arr, Distribution.block(3, 1))
        assert rec is not None
        assert rec.name == "D_Repl->D_Trans"
        assert rec.kind == "comm"
        assert arr.distribution == Distribution.block(3, 1)

    def test_noop_redistribution_returns_none(self):
        rt = FxRuntime(TOY, 4)
        arr = rt.darray("A", np.zeros((3, 5, 11)), Distribution.block(3, 1))
        assert rt.redistribute(arr, Distribution.block(3, 1)) is None
        assert rt.timeline.communication_steps() == 0

    def test_repl_to_trans_has_no_network_traffic(self):
        rt = FxRuntime(TOY, 4)
        arr = rt.darray("A", np.zeros((3, 5, 11)), Distribution.replicated(3))
        rec = rt.redistribute(arr, Distribution.block(3, 1))
        assert rec.total_bytes_sent() == 0
        assert rec.total_bytes_copied() > 0

    def test_sequential_io_phase(self):
        rt = FxRuntime(TOY, 4)
        rec = rt.sequential_io("inputhour", nbytes=100)
        assert rec.name == "io:inputhour"
        assert all(rt.cluster.clock(i) == pytest.approx(50.0) for i in range(4))

    def test_breakdown_buckets(self):
        rt = FxRuntime(TOY, 2)
        arr = rt.darray("A", np.ones((3, 4, 6)), Distribution.block(3, 2))
        rt.parallel_do(arr, "chemistry", lambda l, i, r: 2.0)
        rt.redistribute(arr, Distribution.replicated(3))
        rt.replicated_do(arr, "aerosol", lambda d: 1.0)
        rt.redistribute(arr, Distribution.block(3, 1))
        rt.parallel_do(arr, "transport", lambda l, i, r: 3.0)
        rt.sequential_io("outputhour", nbytes=10)
        b = rt.breakdown()
        assert b["chemistry"] == pytest.approx(2.0 + 1.0)  # + aerosol
        assert b["transport"] == pytest.approx(3.0)
        assert b["io"] == pytest.approx(5.0)
        assert b["communication"] > 0
        assert b["other"] == 0.0

    def test_breakdown_sums_to_total(self):
        rt = FxRuntime(TOY, 2)
        arr = rt.darray("A", np.ones((3, 4, 6)), Distribution.block(3, 2))
        rt.parallel_do(arr, "chemistry", lambda l, i, r: float(l.size))
        rt.redistribute(arr, Distribution.replicated(3))
        rt.sequential_io("out", nbytes=4)
        b = rt.breakdown()
        assert sum(b.values()) == pytest.approx(rt.time())

    def test_split_and_subgroup_arrays(self):
        rt = FxRuntime(TOY, 6)
        io_grp, main_grp = rt.split([2, 4])
        arr = rt.darray("A", np.zeros((3, 4, 8)), Distribution.block(3, 2),
                        group=main_grp)
        assert arr.group.size == 4
        rec = rt.parallel_do(arr, "chemistry", lambda l, i, r: 1.0)
        assert rec.node_ids == (2, 3, 4, 5)

    def test_uses_paper_machine(self):
        rt = FxRuntime(CRAY_T3E, 8)
        assert rt.machine.name == "Cray T3E"
        assert rt.nprocs == 8
