"""Tests for DistributedArray: views, materialisation, real data movement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fx import DistributedArray, Distribution
from repro.vm import Cluster, MachineSpec

TOY = MachineSpec("toy", latency=1e-6, gap=1e-9, copy_cost=1e-9,
                  seconds_per_op=1e-9, io_seconds_per_byte=1e-9)


def make_array(shape, dist, P, name="A"):
    cluster = Cluster(TOY, P)
    group = cluster.subgroup(range(P))
    rng = np.random.default_rng(42)
    data = rng.normal(size=shape)
    return DistributedArray(name, data, dist, group)


class TestCanonicalMode:
    def test_local_view_is_writable_view(self):
        arr = make_array((4, 6), Distribution.block(2, 1), 3)
        v = arr.local_view(1)
        assert v.base is arr.data
        v[:] = 7.0
        assert np.all(arr.data[:, 2:4] == 7.0)

    def test_replicated_view_is_whole_array(self):
        arr = make_array((4, 6), Distribution.replicated(2), 3)
        assert arr.local_view(2).shape == (4, 6)

    def test_local_indices(self):
        arr = make_array((4, 6), Distribution.block(2, 1), 3)
        assert list(arr.local_indices(0)) == [0, 1]
        assert list(arr.local_indices(2)) == [4, 5]

    def test_local_indices_replicated_raises(self):
        arr = make_array((4, 6), Distribution.replicated(2), 3)
        with pytest.raises(ValueError):
            arr.local_indices(0)

    def test_ndim_mismatch_rejected(self):
        cluster = Cluster(TOY, 2)
        with pytest.raises(ValueError):
            DistributedArray(
                "A", np.zeros((3, 3)), Distribution.block(3, 0),
                cluster.subgroup([0, 1]),
            )

    def test_set_distribution_changes_layout(self):
        arr = make_array((4, 6), Distribution.block(2, 1), 3)
        plan = arr.set_distribution(Distribution.replicated(2))
        assert arr.layout.is_replicated
        assert not plan.is_empty()


class TestMaterializedMode:
    def test_materialize_then_check(self):
        arr = make_array((4, 6), Distribution.block(2, 1), 3)
        arr.materialize()
        assert arr.is_materialized
        assert arr.check_consistency()
        assert arr.local_block(0).shape == (4, 2)

    def test_local_block_without_materialize_raises(self):
        arr = make_array((4, 6), Distribution.block(2, 1), 3)
        with pytest.raises(ValueError):
            arr.local_block(0)
        with pytest.raises(ValueError):
            arr.check_consistency()

    def test_blocks_land_in_node_stores(self):
        arr = make_array((4, 6), Distribution.block(2, 1), 3)
        arr.materialize()
        node0 = arr.group.cluster.nodes[0]
        assert "darray:A" in node0.store
        assert np.array_equal(node0.store["darray:A"], arr.local_block(0))


AIRSHED_STEPS = [
    (Distribution.replicated(3), Distribution.block(3, 1)),   # Repl->Trans
    (Distribution.block(3, 1), Distribution.block(3, 2)),     # Trans->Chem
    (Distribution.block(3, 2), Distribution.replicated(3)),   # Chem->Repl
    (Distribution.block(3, 1), Distribution.replicated(3)),   # Trans->Repl
    (Distribution.block(3, 2), Distribution.block(3, 1)),     # Chem->Trans
]


class TestMaterializedRedistribution:
    """Physically move blocks through each Airshed step and verify."""

    @pytest.mark.parametrize("src,dst", AIRSHED_STEPS)
    @pytest.mark.parametrize("P", [1, 2, 3, 7])
    def test_airshed_step_moves_data_correctly(self, src, dst, P):
        arr = make_array((3, 5, 11), src, P)
        arr.materialize()
        arr.set_distribution(dst)
        assert arr.check_consistency()

    def test_chain_of_redistributions(self):
        """A full main-loop cycle of layout changes preserves all data."""
        arr = make_array((3, 5, 11), Distribution.replicated(3), 4)
        arr.materialize()
        for dist in [
            Distribution.block(3, 1),
            Distribution.block(3, 2),
            Distribution.replicated(3),
            Distribution.block(3, 1),
        ]:
            arr.set_distribution(dist)
            assert arr.check_consistency()


# ---------------------------------------------------------------------------
# Property-based: redistribution between random layouts moves data right.
# ---------------------------------------------------------------------------
def _dist_from(dim, kind, bs):
    if dim is None:
        return Distribution.replicated(3)
    if kind == "block":
        return Distribution.block(3, dim)
    if kind == "cyclic":
        return Distribution.cyclic(3, dim)
    return Distribution.block_cyclic(3, dim, bs)


@settings(max_examples=60, deadline=None)
@given(
    shape=st.tuples(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=9),
    ),
    P=st.integers(min_value=1, max_value=6),
    src_dim=st.sampled_from([None, 0, 1, 2]),
    dst_dim=st.sampled_from([None, 0, 1, 2]),
    src_kind=st.sampled_from(["block", "cyclic", "block_cyclic"]),
    dst_kind=st.sampled_from(["block", "cyclic", "block_cyclic"]),
    bs=st.integers(min_value=1, max_value=3),
)
def test_random_materialized_redistribution(
    shape, P, src_dim, dst_dim, src_kind, dst_kind, bs
):
    src = _dist_from(src_dim, src_kind, bs)
    dst = _dist_from(dst_dim, dst_kind, bs)
    arr = make_array(shape, src, P)
    arr.materialize()
    assert arr.check_consistency()
    arr.set_distribution(dst)
    assert arr.check_consistency()


@settings(max_examples=30, deadline=None)
@given(
    P=st.integers(min_value=1, max_value=5),
    steps=st.lists(
        st.tuples(
            st.sampled_from([None, 0, 1, 2]),
            st.sampled_from(["block", "cyclic", "block_cyclic"]),
            st.integers(min_value=1, max_value=3),
        ),
        min_size=1,
        max_size=6,
    ),
)
def test_random_redistribution_sequences(P, steps):
    """Arbitrary chains of layout changes never lose or corrupt data —
    the invariant the Airshed main loop relies on thousands of times."""
    arr = make_array((3, 4, 7), Distribution.replicated(3), P)
    arr.materialize()
    for dim, kind, bs in steps:
        arr.set_distribution(_dist_from(dim, kind, bs))
        assert arr.check_consistency()
