"""Tests for the redistribution planner.

The key checks tie the planner's exact counts to the closed-form cost
equations of Section 4.2 of the paper for the three Airshed steps.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fx import Distribution, plan_redistribution

SPECIES, LAYERS, NODES = 35, 5, 700
SHAPE = (SPECIES, LAYERS, NODES)
W = 8

D_REPL = Distribution.replicated(3)
D_TRANS = Distribution.block(3, 1)
D_CHEM = Distribution.block(3, 2)


def layouts(P):
    return (
        D_REPL.layout(SHAPE, P),
        D_TRANS.layout(SHAPE, P),
        D_CHEM.layout(SHAPE, P),
    )


class TestAirshedSteps:
    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    def test_repl_to_trans_is_pure_local_copy(self, P):
        repl, trans, _ = layouts(P)
        plan = plan_redistribution(repl, trans, W)
        assert plan.network_bytes() == 0
        assert plan.message_count() == 0
        # The paper's H term: the busiest node copies
        # ceil(layers/min(layers,P)) * species * nodes * W bytes.
        expected_max = (
            math.ceil(LAYERS / min(LAYERS, P)) * SPECIES * NODES * W
        )
        max_copied = max(plan.bytes_copied_by(i) for i in range(P))
        assert max_copied == expected_max

    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    def test_trans_to_chem_sender_load(self, P):
        _, trans, chem = layouts(P)
        plan = plan_redistribution(trans, chem, W)
        # Paper: the busiest sender ships (almost) its whole local block,
        # G * ceil(layers/min(layers,P)) * species * nodes * W, in P messages.
        max_layers = math.ceil(LAYERS / min(LAYERS, P))
        block_bytes = max_layers * SPECIES * NODES * W
        busiest_sent = max(plan.bytes_sent_by(i) for i in range(P))
        busiest_kept = max(plan.bytes_copied_by(i) for i in range(P))
        # sent + kept-locally = the node's whole block
        assert busiest_sent + plan.bytes_copied_by(0) <= block_bytes
        assert busiest_sent <= block_bytes
        assert busiest_sent >= block_bytes * (P - 1) / P * 0.99
        # each owner sends one message per remote destination
        senders = [i for i in range(P) if plan.bytes_sent_by(i) > 0]
        assert len(senders) == min(LAYERS, P) or len(senders) <= min(LAYERS, P)
        for s in senders:
            msgs = sum(
                t.messages for t in plan.transfers if t.src == s and t.dst != s
            )
            assert msgs == P - 1
        assert busiest_kept > 0  # diagonal tile stays local

    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    def test_chem_to_repl_receiver_load(self, P):
        _, _, chem = layouts(P)
        repl = D_REPL.layout(SHAPE, P)
        plan = plan_redistribution(chem, repl, W)
        total = SPECIES * LAYERS * NODES * W
        for dst in range(P):
            own = chem.local_nbytes(dst, W)
            assert plan.bytes_received_by(dst) == total - own
            assert plan.bytes_copied_by(dst) == own
            recv_msgs = sum(
                t.messages for t in plan.transfers if t.dst == dst and t.src != dst
            )
            assert recv_msgs == P - 1

    def test_identical_layouts_no_plan(self):
        repl, trans, chem = layouts(8)
        assert plan_redistribution(trans, trans, W).is_empty()
        assert plan_redistribution(repl, repl, W).is_empty()
        assert plan_redistribution(chem, chem, W).is_empty()

    def test_plans_are_cached(self):
        _, trans, chem = layouts(8)
        p1 = plan_redistribution(trans, chem, W)
        p2 = plan_redistribution(trans, chem, W)
        assert p1 is p2


class TestValidation:
    def test_shape_mismatch_rejected(self):
        a = D_TRANS.layout(SHAPE, 4)
        b = D_CHEM.layout((35, 5, 701), 4)
        with pytest.raises(ValueError):
            plan_redistribution(a, b, W)

    def test_procs_mismatch_rejected(self):
        a = D_TRANS.layout(SHAPE, 4)
        b = D_CHEM.layout(SHAPE, 8)
        with pytest.raises(ValueError):
            plan_redistribution(a, b, W)


class TestConservation:
    """Every plan delivers each target element exactly once."""

    @pytest.mark.parametrize(
        "src,dst",
        [
            (D_REPL, D_TRANS),
            (D_TRANS, D_CHEM),
            (D_CHEM, D_REPL),
            (D_TRANS, D_REPL),
            (D_CHEM, D_TRANS),
            (D_REPL, D_CHEM),
        ],
    )
    @pytest.mark.parametrize("P", [1, 3, 7])
    def test_delivered_bytes_match_target_footprint(self, src, dst, P):
        a = src.layout(SHAPE, P)
        b = dst.layout(SHAPE, P)
        plan = plan_redistribution(a, b, W)
        for node in range(P):
            need = b.local_nbytes(node, W)
            have_already = 0
            if a.is_replicated:
                # Everything needed is already local (copy only).
                have_already = need - plan.bytes_copied_by(node)
                assert have_already == 0
            got = plan.bytes_received_by(node) + plan.bytes_copied_by(node)
            assert got == need or (a == b and got == 0)


# ---------------------------------------------------------------------------
# Property-based: conservation holds for random shapes/placements.
# ---------------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    s0=st.integers(min_value=1, max_value=6),
    s1=st.integers(min_value=1, max_value=9),
    s2=st.integers(min_value=1, max_value=17),
    P=st.integers(min_value=1, max_value=9),
    src_dim=st.sampled_from([None, 0, 1, 2]),
    dst_dim=st.sampled_from([None, 0, 1, 2]),
    src_kind=st.sampled_from(["block", "cyclic"]),
    dst_kind=st.sampled_from(["block", "cyclic"]),
)
def test_random_redistribution_conserves_data(
    s0, s1, s2, P, src_dim, dst_dim, src_kind, dst_kind
):
    shape = (s0, s1, s2)

    def make(dim, kind):
        if dim is None:
            return Distribution.replicated(3)
        if kind == "block":
            return Distribution.block(3, dim)
        return Distribution.cyclic(3, dim)

    a = make(src_dim, src_kind).layout(shape, P)
    b = make(dst_dim, dst_kind).layout(shape, P)
    plan = plan_redistribution(a, b, 8)

    if a == b or (a.is_replicated and b.is_replicated):
        assert plan.is_empty()
        return

    for node in range(P):
        delivered = plan.bytes_received_by(node) + plan.bytes_copied_by(node)
        assert delivered == b.local_nbytes(node, 8)
    # No node ships data it does not own.
    for node in range(P):
        assert (
            plan.bytes_sent_by(node) + plan.bytes_copied_by(node)
            <= a.local_nbytes(node, 8) * max(P, 1)
        )
    # Optimality: nothing already local crosses the network.  Each
    # node's received bytes equal its target footprint minus what it
    # could satisfy locally (replicated source ⇒ zero network).
    if a.is_replicated:
        assert plan.network_bytes() == 0


@settings(max_examples=40, deadline=None)
@given(
    P=st.integers(min_value=1, max_value=8),
    n=st.integers(min_value=1, max_value=24),
)
def test_same_dim_repartition_moves_only_the_difference(P, n):
    """BLOCK -> CYCLIC along one dim: every byte received is a byte the
    node did not own before (the planner never re-sends local data)."""
    shape = (3, n)
    a = Distribution.block(2, 1).layout(shape, P)
    b = Distribution.cyclic(2, 1).layout(shape, P)
    plan = plan_redistribution(a, b, 8)
    for node in range(P):
        owned_before = set(a.owned_indices(node).tolist())
        owned_after = set(b.owned_indices(node).tolist())
        new_indices = owned_after - owned_before
        kept_indices = owned_after & owned_before
        other = 3 * 8  # non-distributed dim elements x itemsize
        assert plan.bytes_received_by(node) == len(new_indices) * other
        assert plan.bytes_copied_by(node) == len(kept_indices) * other


class TestAnalyzerEdgeCases:
    """Edge cases the static analyzer's plan elision relies on
    (`repro.analyze` skips steps exactly when the plan is empty)."""

    def test_identity_redistribution_plans_nothing(self):
        for dist in (D_REPL, D_TRANS, D_CHEM):
            layout = dist.layout(SHAPE, 8)
            plan = plan_redistribution(layout, layout, W)
            assert plan.is_empty()
            assert plan.network_bytes() == 0
            assert plan.copied_bytes() == 0
            assert plan.message_count() == 0

    def test_replicated_to_replicated_is_empty(self):
        """Two distinct replicated directives still describe the same
        placement: nothing moves and nothing is copied."""
        a = Distribution.replicated(3).layout(SHAPE, 8)
        b = Distribution.replicated(3).layout(SHAPE, 8)
        assert plan_redistribution(a, b, W).is_empty()

    @pytest.mark.parametrize("src,dst", [
        (D_REPL, D_TRANS),
        (D_TRANS, D_CHEM),
        (D_CHEM, D_REPL),
    ])
    def test_single_node_group_never_communicates(self, src, dst):
        """On a one-node group every layout is total ownership: the plan
        may copy locally but must not send a single message."""
        plan = plan_redistribution(
            src.layout(SHAPE, 1), dst.layout(SHAPE, 1), W
        )
        assert plan.message_count() == 0
        assert plan.network_bytes() == 0
        total = SPECIES * LAYERS * NODES * W
        for t in plan.transfers:
            assert t.src == 0 and t.dst == 0
        assert plan.copied_bytes() in (0, total)
