"""Tests for optimal task-pipeline processor allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fx.mapping import (
    StageModel,
    best_airshed_mapping,
    optimal_pipeline_mapping,
)
from repro.model import replay_data_parallel, replay_task_parallel
from repro.model.taskparallel import replay_best_configuration
from repro.vm import INTEL_PARAGON


class TestStageModel:
    def test_time_model(self):
        s = StageModel("main", sequential=1.0, parallel_work=10.0,
                       max_parallelism=5)
        assert s.time(1) == pytest.approx(11.0)
        assert s.time(5) == pytest.approx(3.0)
        assert s.time(50) == pytest.approx(3.0)  # saturates

    def test_validation(self):
        with pytest.raises(ValueError):
            StageModel("x", sequential=-1.0)
        with pytest.raises(ValueError):
            StageModel("x", 0.0, max_parallelism=0)
        with pytest.raises(ValueError):
            StageModel("x", 0.0).time(0)


class TestOptimalMapping:
    def test_balanced_stages_split_evenly(self):
        stages = [
            StageModel("a", 0.0, parallel_work=10.0, max_parallelism=100),
            StageModel("b", 0.0, parallel_work=10.0, max_parallelism=100),
        ]
        m = optimal_pipeline_mapping(stages, 8)
        assert m.allocation == (4, 4)
        assert m.period == pytest.approx(2.5)

    def test_heavy_stage_gets_more_nodes(self):
        stages = [
            StageModel("light", 0.0, parallel_work=10.0, max_parallelism=100),
            StageModel("heavy", 0.0, parallel_work=90.0, max_parallelism=100),
        ]
        m = optimal_pipeline_mapping(stages, 10)
        assert m.allocation == (1, 9)

    def test_sequential_stage_gets_one_node(self):
        stages = [
            StageModel("io", 1.0),  # sequential: extra nodes useless
            StageModel("main", 0.0, parallel_work=100.0, max_parallelism=64),
        ]
        m = optimal_pipeline_mapping(stages, 16)
        assert m.allocation[0] == 1
        assert m.allocation[1] == 15

    def test_period_is_bottleneck_stage(self):
        stages = [
            StageModel("a", 3.0),
            StageModel("b", 0.0, parallel_work=8.0, max_parallelism=8),
        ]
        m = optimal_pipeline_mapping(stages, 9)
        assert m.period == pytest.approx(3.0)  # stage a dominates

    def test_saturation_leaves_nodes_idle_rather_than_hurting(self):
        """If parallelism saturates, extra nodes neither help nor hurt."""
        stages = [StageModel("a", 0.0, parallel_work=10.0, max_parallelism=2)]
        m = optimal_pipeline_mapping(stages, 64)
        assert m.period == pytest.approx(5.0)

    def test_needs_enough_nodes(self):
        with pytest.raises(ValueError):
            optimal_pipeline_mapping([StageModel("a", 1.0)] * 3, 2)
        with pytest.raises(ValueError):
            optimal_pipeline_mapping([], 4)


class TestOptimalityAgainstBruteForce:
    """The DP must match exhaustive search on small instances."""

    @staticmethod
    def brute_force(stages, nprocs):
        from itertools import product as iproduct

        best = None
        S = len(stages)
        for alloc in iproduct(range(1, nprocs + 1), repeat=S):
            if sum(alloc) > nprocs:
                continue
            period = max(st.time(p) for st, p in zip(stages, alloc))
            if best is None or period < best[0]:
                best = (period, alloc)
        return best[0]

    @settings(max_examples=40, deadline=None)
    @given(
        nstages=st.integers(min_value=1, max_value=3),
        nprocs=st.integers(min_value=3, max_value=10),
        data=st.data(),
    )
    def test_dp_matches_brute_force(self, nstages, nprocs, data):
        stages = []
        for i in range(nstages):
            stages.append(StageModel(
                name=f"s{i}",
                sequential=data.draw(st.floats(min_value=0.0, max_value=5.0)),
                parallel_work=data.draw(st.floats(min_value=0.0, max_value=50.0)),
                max_parallelism=data.draw(st.integers(min_value=1, max_value=12)),
            ))
        dp = optimal_pipeline_mapping(stages, nprocs)
        ref = self.brute_force(stages, nprocs)
        assert dp.period == pytest.approx(ref, rel=1e-12)


class TestBestAirshedMapping:
    IN = StageModel("in", 2.0)
    MAIN = StageModel("main", 0.5, parallel_work=200.0, max_parallelism=1000)
    OUT = StageModel("out", 1.0)

    def test_small_machine_prefers_data_parallel(self):
        mode, m = best_airshed_mapping(self.IN, self.MAIN, self.OUT, 2)
        assert mode == "data-parallel"

    def test_large_machine_prefers_pipeline(self):
        mode, m = best_airshed_mapping(self.IN, self.MAIN, self.OUT, 64)
        assert mode == "pipelined"
        assert m.allocation[0] == 1 and m.allocation[2] == 1

    def test_pipeline_period_below_serial(self):
        mode, piped = best_airshed_mapping(self.IN, self.MAIN, self.OUT, 64)
        serial = self.IN.time(64) + self.MAIN.time(64) + self.OUT.time(64)
        assert piped.period < serial


class TestReplayBestConfiguration:
    def test_never_worse_than_either_baseline(self, tiny_trace):
        for P in (4, 8, 32):
            mode, best = replay_best_configuration(
                tiny_trace, INTEL_PARAGON, P
            )
            dp = replay_data_parallel(tiny_trace, INTEL_PARAGON, P).total_time
            assert best.total_time <= dp + 1e-9
            if P >= 3:
                tp = replay_task_parallel(tiny_trace, INTEL_PARAGON, P).total_time
                assert best.total_time <= tp + 1e-9

    def test_small_P_picks_data_parallel(self, tiny_trace):
        mode, _ = replay_best_configuration(tiny_trace, INTEL_PARAGON, 4)
        assert mode == "data-parallel"

    def test_large_P_picks_pipeline(self, tiny_trace):
        mode, _ = replay_best_configuration(tiny_trace, INTEL_PARAGON, 32)
        assert mode.startswith("pipelined")
