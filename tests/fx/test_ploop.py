"""Tests for owner-computes parallel loops and replicated computations."""

import numpy as np
import pytest

from repro.fx import DistributedArray, Distribution, parallel_do, replicated_do
from repro.vm import Cluster, MachineSpec

TOY = MachineSpec("toy", latency=1.0, gap=0.0, copy_cost=0.0,
                  seconds_per_op=1.0, io_seconds_per_byte=1.0)


def make(shape, dist, P):
    cluster = Cluster(TOY, P)
    data = np.arange(float(np.prod(shape))).reshape(shape)
    return DistributedArray("A", data, dist, cluster.subgroup(range(P))), cluster


class TestParallelDo:
    def test_kernel_updates_canonical_data_once(self):
        arr, _ = make((4, 8), Distribution.block(2, 1), 4)
        before = arr.data.copy()

        def kernel(local, idx, rank):
            local += 1.0
            return float(local.size)

        parallel_do(arr, "inc", kernel)
        assert np.array_equal(arr.data, before + 1.0)

    def test_per_node_costs_reflect_load_imbalance(self):
        """5 layers on 4 nodes: one node gets 2 layers, one gets 0."""
        arr, cluster = make((3, 5, 7), Distribution.block(3, 1), 4)

        def kernel(local, idx, rank):
            return float(len(idx))  # 1 op per owned layer

        rec = parallel_do(arr, "transport", kernel)
        assert rec.ops == {0: 2.0, 1: 2.0, 2: 1.0, 3: 0.0}
        assert cluster.clock(0) == pytest.approx(2.0)
        assert cluster.clock(3) == pytest.approx(0.0)
        assert rec.duration == pytest.approx(2.0)

    def test_kernel_sees_global_indices(self):
        arr, _ = make((2, 6), Distribution.block(2, 1), 3)
        seen = {}

        def kernel(local, idx, rank):
            seen[rank] = list(idx)
            return 0.0

        parallel_do(arr, "scan", kernel)
        assert seen == {0: [0, 1], 1: [2, 3], 2: [4, 5]}

    def test_replicated_array_rejected(self):
        arr, _ = make((2, 6), Distribution.replicated(2), 3)
        with pytest.raises(ValueError):
            parallel_do(arr, "x", lambda l, i, r: 0.0)

    def test_materialized_array_rejected(self):
        arr, _ = make((2, 6), Distribution.block(2, 1), 3)
        arr.materialize()
        with pytest.raises(ValueError):
            parallel_do(arr, "x", lambda l, i, r: 0.0)

    def test_negative_ops_rejected(self):
        arr, _ = make((2, 6), Distribution.block(2, 1), 3)
        with pytest.raises(ValueError):
            parallel_do(arr, "x", lambda l, i, r: -1.0)


class TestReplicatedDo:
    def test_runs_once_charges_everyone(self):
        arr, cluster = make((2, 6), Distribution.replicated(2), 3)
        calls = []

        def kernel(data):
            calls.append(1)
            data *= 2.0
            return 5.0

        rec = replicated_do(arr, "aerosol", kernel)
        assert len(calls) == 1  # real work done once
        assert all(cluster.clock(i) == pytest.approx(5.0) for i in range(3))
        assert rec.ops == {0: 5.0, 1: 5.0, 2: 5.0}

    def test_ops_override(self):
        arr, cluster = make((2, 6), Distribution.replicated(2), 2)
        replicated_do(arr, "aerosol", lambda d: 100.0, ops=3.0)
        assert cluster.clock(0) == pytest.approx(3.0)

    def test_distributed_array_rejected(self):
        arr, _ = make((2, 6), Distribution.block(2, 1), 3)
        with pytest.raises(ValueError):
            replicated_do(arr, "x", lambda d: 0.0)
