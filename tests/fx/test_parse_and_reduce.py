"""Tests for HPF directive parsing and the do&merge parallel reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fx import DistributedArray, Distribution, parallel_reduce
from repro.vm import Cluster, MachineSpec

TOY = MachineSpec("toy", latency=1.0, gap=0.01, copy_cost=0.001,
                  seconds_per_op=1.0, io_seconds_per_byte=1.0)


class TestDirectiveParsing:
    @pytest.mark.parametrize("text,ndim,dim", [
        ("(*,*,*)", 3, None),
        ("(*,BLOCK,*)", 3, 1),
        ("(*,*,BLOCK)", 3, 2),
        ("(BLOCK,*)", 2, 0),
        ("(CYCLIC,*)", 2, 0),
        ("(*,CYCLIC(4))", 2, 1),
    ])
    def test_parse_valid(self, text, ndim, dim):
        d = Distribution.parse(text)
        assert d.ndim == ndim
        assert d.dim == dim

    def test_parse_case_and_whitespace_insensitive(self):
        d = Distribution.parse("  ( * , block , * ) ")
        assert d == Distribution.block(3, 1)

    def test_roundtrip_with_spec(self):
        for d in (
            Distribution.replicated(3),
            Distribution.block(3, 1),
            Distribution.cyclic(2, 0),
            Distribution.block_cyclic(2, 1, 4),
        ):
            assert Distribution.parse(d.spec()) == d

    @pytest.mark.parametrize("bad", [
        "*,BLOCK,*",            # no parens
        "()",                   # empty
        "(*,,*)",               # empty dim
        "(BLOCK,BLOCK)",        # two distributed dims
        "(*,WEIRD)",            # unknown token
        "(*,CYCLIC(x))",        # bad block size
    ])
    def test_parse_invalid(self, bad):
        with pytest.raises(ValueError):
            Distribution.parse(bad)


def make(shape, dist, P):
    cluster = Cluster(TOY, P)
    data = np.arange(float(np.prod(shape))).reshape(shape)
    return DistributedArray("A", data, dist, cluster.subgroup(range(P))), cluster


class TestParallelReduce:
    @pytest.mark.parametrize("P", [1, 2, 3, 5, 8])
    def test_sum_matches_sequential(self, P):
        arr, _ = make((4, 12), Distribution.block(2, 1), P)

        def kernel(local, idx, rank):
            return local.sum(keepdims=True), 1.0

        total = parallel_reduce(arr, "sum", kernel)
        assert total[0] == pytest.approx(np.arange(48.0).sum())

    def test_max_reduction(self):
        arr, _ = make((3, 9), Distribution.block(2, 1), 3)
        total = parallel_reduce(
            arr, "max",
            lambda l, i, r: (np.array([l.max()]), 1.0),
            combine=np.maximum,
        )
        assert total[0] == 26.0

    def test_reduction_charges_tree_messages(self):
        arr, cluster = make((2, 8), Distribution.block(2, 1), 4)
        parallel_reduce(arr, "s", lambda l, i, r: (np.zeros(1), 1.0))
        reduce_recs = cluster.timeline.records(name="s:reduce")
        total_msgs = sum(r.total_messages_sent() for r in reduce_recs)
        assert total_msgs == 3  # P-1 combines for P=4
        bcast = cluster.timeline.records(name="s:bcast")
        assert sum(r.total_messages_sent() for r in bcast) == 3

    def test_empty_ranks_skipped(self):
        """More nodes than extent: empty ranks contribute nothing."""
        arr, _ = make((2, 3), Distribution.block(2, 1), 8)
        total = parallel_reduce(arr, "s", lambda l, i, r: (l.sum(keepdims=True), 1.0))
        assert total[0] == pytest.approx(np.arange(6.0).sum())

    def test_replicated_rejected(self):
        arr, _ = make((2, 4), Distribution.replicated(2), 2)
        with pytest.raises(ValueError):
            parallel_reduce(arr, "s", lambda l, i, r: (np.zeros(1), 0.0))

    def test_negative_ops_rejected(self):
        arr, _ = make((2, 4), Distribution.block(2, 1), 2)
        with pytest.raises(ValueError):
            parallel_reduce(arr, "s", lambda l, i, r: (np.zeros(1), -1.0))

    def test_single_node(self):
        arr, cluster = make((2, 4), Distribution.block(2, 1), 1)
        total = parallel_reduce(arr, "s", lambda l, i, r: (l.sum(keepdims=True), 1.0))
        assert total[0] == pytest.approx(np.arange(8.0).sum())
        assert cluster.timeline.communication_steps() == 0


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    P=st.integers(min_value=1, max_value=9),
)
def test_property_reduce_equals_numpy_sum(n, P):
    arr, _ = make((2, n), Distribution.block(2, 1), P)
    total = parallel_reduce(arr, "s", lambda l, i, r: (l.sum(keepdims=True), 1.0))
    assert total[0] == pytest.approx(np.arange(2.0 * n).sum())
