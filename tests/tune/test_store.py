"""CalibrationStore: content addressing, durability, integrity."""

import json

import pytest

from repro.tune import CalibrationStore, Observation


def obs(phase="job", observed_s=2.0, **kw):
    base = dict(dataset="demo", machine="host", nprocs=1,
                variant="sequential", cores_per_job=1, phase=phase,
                observed_s=observed_s)
    base.update(kw)
    return Observation(**base)


class TestObservation:
    def test_phase_key_format(self):
        o = obs(machine="t3e", nprocs=16, variant="data", cores_per_job=4,
                phase="chemistry")
        assert o.phase_key == "demo|t3e|p16|data|c4|chemistry"

    def test_digest_excludes_provenance_timestamp(self):
        a = obs(timestamp="2026-01-01T00:00:00Z")
        b = obs(timestamp="2026-12-31T23:59:59Z")
        assert a.digest == b.digest
        assert "timestamp" not in a.payload()

    def test_digest_covers_the_measurement(self):
        assert obs(observed_s=1.0).digest != obs(observed_s=2.0).digest
        assert obs(phase="job").digest != obs(phase="makespan").digest

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            obs(observed_s=-1.0)
        with pytest.raises(ValueError):
            obs(nprocs=-1)

    def test_round_trips_through_dict(self):
        o = obs(predicted_s=1.5, ops=1e9, timestamp="t")
        assert Observation.from_dict(o.to_dict()) == o


class TestStore:
    def test_add_dedupes_by_content(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        assert store.add(obs(timestamp="a"))
        assert not store.add(obs(timestamp="a"))
        # a different provenance stamp is still the same measurement
        assert not store.add(obs(timestamp="b"))
        assert store.generation == 1

    def test_add_many_is_idempotent(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        batch = [obs(observed_s=1.0), obs(observed_s=2.0)]
        assert store.add_many(batch) == 2
        assert store.add_many(batch) == 0
        # a re-opened store sees the same durable state
        assert CalibrationStore(tmp_path / "s").add_many(batch) == 0

    def test_generation_and_fingerprint_track_content(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        assert store.generation == 0
        assert store.fingerprint == ""
        store.add(obs(observed_s=1.0))
        f1 = store.fingerprint
        store.add(obs(observed_s=2.0))
        assert store.generation == 2
        assert store.fingerprint != f1

    def test_fingerprint_is_order_independent(self, tmp_path):
        a, b = obs(observed_s=1.0), obs(observed_s=2.0)
        s1 = CalibrationStore(tmp_path / "s1")
        s1.add(a), s1.add(b)
        s2 = CalibrationStore(tmp_path / "s2")
        s2.add(b), s2.add(a)
        assert s1.fingerprint == s2.fingerprint

    def test_decisions_journal_in_order_never_deduped(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        store.record_decision({"key": "k1", "generation": 0})
        store.record_decision({"key": "k1", "generation": 0})
        assert store.decisions() == [
            {"key": "k1", "generation": 0},
            {"key": "k1", "generation": 0},
        ]

    def test_torn_final_journal_line_is_tolerated(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        store.add(obs(observed_s=1.0))
        store.add(obs(observed_s=2.0))
        with store.journal_path.open("a") as fh:
            fh.write('{"type": "obs", "dig')  # crash mid-append
        fresh = CalibrationStore(tmp_path / "s")
        assert len(fresh.observations()) == 2  # strict loader is fine
        assert fresh.scan().errors == []

    def test_interior_corruption_raises_strict_reports_tolerant(
        self, tmp_path
    ):
        store = CalibrationStore(tmp_path / "s")
        store.add(obs(observed_s=1.0))
        with store.journal_path.open("a") as fh:
            fh.write("not json\n")
        store.add(obs(observed_s=2.0))  # a later durable append
        fresh = CalibrationStore(tmp_path / "s")
        with pytest.raises(ValueError):
            fresh.observations()
        scan = fresh.scan()
        assert len(scan.errors) == 1
        assert "journal line 2" in scan.errors[0]
        assert len(scan.observations) == 2  # good records survive

    def test_digest_mismatch_detected(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        event = {"type": "obs", "digest": "0" * 64,
                 "obs": obs().to_dict()}
        with store.journal_path.open("a") as fh:
            fh.write(json.dumps(event) + "\n")
        fresh = CalibrationStore(tmp_path / "s")
        with pytest.raises(ValueError):
            fresh.observations()
        scan = fresh.scan()
        assert len(scan.errors) == 1
        assert "digest mismatch" in scan.errors[0]
        assert scan.observations == []

    def test_malformed_record_reported(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        with store.journal_path.open("a") as fh:
            fh.write(json.dumps({"type": "obs", "obs": {"bogus": 1}}) + "\n")
        scan = CalibrationStore(tmp_path / "s").scan()
        assert len(scan.errors) == 1
        assert "malformed" in scan.errors[0]

    def test_compact_preserves_everything(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        store.add_many([obs(observed_s=1.0), obs(observed_s=2.0)])
        store.record_decision({"key": "k", "generation": 2})
        before = (store.generation, store.fingerprint, store.decisions())
        store.compact()
        assert store.snapshot_path.is_file()
        assert store.journal_path.read_text() == ""
        fresh = CalibrationStore(tmp_path / "s")
        assert (fresh.generation, fresh.fingerprint,
                fresh.decisions()) == before
        # dedupe still holds against the snapshot
        assert not fresh.add(obs(observed_s=1.0))
        # and new appends land after it
        assert fresh.add(obs(observed_s=3.0))
        assert fresh.generation == 3

    def test_stats_tolerates_corruption(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        store.add(obs(observed_s=1.0))
        with store.journal_path.open("a") as fh:
            fh.write("not json\n")
        store.add(obs(observed_s=2.0))
        stats = CalibrationStore(tmp_path / "s").stats()  # must not raise
        assert stats["n_errors"] == 1
        assert stats["n_observations"] == 2
        assert stats["fingerprint"] != ""

    def test_stats_shape(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        store.add(obs())
        stats = store.stats()
        assert stats["generation"] == 1
        assert stats["n_observations"] == 1
        assert stats["n_decisions"] == 0
        assert stats["n_errors"] == 0
        assert stats["phase_keys"] == {obs().phase_key: 1}
