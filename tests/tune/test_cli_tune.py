"""CLI: repro tune ingest/status, campaign --autotune, lint --tune."""

import json

import pytest

from repro.cli import main
from repro.tune import CalibrationStore

INGEST = ["tune", "ingest", "--dataset", "demo", "--machine", "t3e",
          "--nodes", "4", "--hours", "1", "--store", "store"]


@pytest.fixture()
def seeded_store(tmp_path, monkeypatch, capsys):
    """One demo ingest into ``store`` under a scratch cwd."""
    monkeypatch.chdir(tmp_path)
    assert main(INGEST) == 0
    out = capsys.readouterr().out
    assert "ingested" in out
    return CalibrationStore("store")


def test_tune_ingest_is_idempotent(seeded_store, capsys):
    generation = seeded_store.generation
    assert generation > 0
    assert main(INGEST) == 0
    out = capsys.readouterr().out
    assert "ingested 0 new observation(s)" in out
    assert CalibrationStore("store").generation == generation


def test_tune_status_renders_and_serializes(seeded_store, capsys):
    assert main(["tune", "status", "--store", "store"]) == 0
    out = capsys.readouterr().out
    assert "calibration store" in out
    assert "diverged" in out  # the paper-vs-refit table rendered
    assert main(["tune", "status", "--store", "store", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"store", "model", "notes", "drift"}
    assert payload["store"]["generation"] == seeded_store.generation
    # the acceptance check: ingested spans moved the refit off paper
    assert payload["model"]["machine_rates"] or payload["model"]["comm"]


def test_tune_status_on_an_empty_store(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["tune", "status", "--store", "empty"]) == 0
    out = capsys.readouterr().out
    assert "0 observation(s)" in out
    assert "generation 0" in out


def test_campaign_run_autotune_reports_decisions(
    tmp_path, monkeypatch, capsys
):
    monkeypatch.chdir(tmp_path)
    argv = ["campaign", "run", "--sweep", "ladder", "--dataset", "demo",
            "--hours", "1", "--nodes", "1", "4", "--workers", "2",
            "--cache-dir", "cache", "--autotune", "--tune-store", "store",
            "--json"]
    assert main(argv) == 0
    report = json.loads(capsys.readouterr().out)
    tuning = report["tuning"]
    assert tuning["generation"] == 0  # cold store on the first plan
    assert len(tuning["decisions"]) == 2
    store = CalibrationStore("store")
    assert store.generation > 0  # the run harvested itself
    assert len(store.decisions()) == 2
    # a second run replans with the harvested calibration
    assert main(argv) == 0
    report2 = json.loads(capsys.readouterr().out)
    assert report2["tuning"]["generation"] > 0
    assert report2["tuning"]["fingerprint"]
    # and the science is bitwise identical either way
    shas = {r["sha256"] for r in report["jobs"] if r["sha256"]}
    shas2 = {r["sha256"] for r in report2["jobs"] if r["sha256"]}
    assert shas == shas2 != set()


def test_autotune_is_local_only(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit, match="planner-side"):
        main(["campaign", "run", "--sweep", "ladder", "--dataset", "demo",
              "--hours", "1", "--server", "http://127.0.0.1:1",
              "--autotune"])


def test_lint_tune_store(seeded_store, capsys):
    assert main(["lint", "--tune", "store", "--drift-band", "0.9"]) == 0
    capsys.readouterr()
    # a corrupt journal line turns the lint into an FX063 error exit
    with seeded_store.journal_path.open("a") as fh:
        fh.write("not json\n")
        fh.write("\n")  # keep the corruption interior
    assert main(["lint", "--tune", "store"]) == 2
    assert "FX063" in capsys.readouterr().out


def test_lint_modes_are_exclusive(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit, match="exclusive"):
        main(["lint", "--tune", "store", "--determinism"])
