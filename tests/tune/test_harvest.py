"""Harvest paths: reports, span traces and replay timelines to obs."""

from repro.observe.compare import COMPONENTS
from repro.sched.job import JobSpec
from repro.tune import (
    CalibrationStore,
    harvest_report,
    job_ops,
    observations_from_timelines,
    observations_from_tracer,
    traced_replay,
)
from repro.vm.machine import get_machine

SPEC = JobSpec(dataset="demo", hours=1, variant="sequential")


class FakeResult:
    def __init__(self, spec, ok=True, from_cache=False,
                 science_cached=False, wall_s=1.0, predicted_s=0.9):
        self.spec = spec
        self.ok = ok
        self.from_cache = from_cache
        self.science_cached = science_cached
        self.wall_s = wall_s
        self.predicted_s = predicted_s


class FakePlan:
    def __init__(self, workers=2):
        self.workers = workers


class FakeReport:
    def __init__(self, results, observed_makespan_s=2.0,
                 predicted_makespan_s=1.8, workers=2):
        self.results = results
        self.observed_makespan_s = observed_makespan_s
        self.predicted_makespan_s = predicted_makespan_s
        self.plan = FakePlan(workers)


class TestHarvestReport:
    def test_executed_job_and_makespan_observations(self):
        report = FakeReport([FakeResult(SPEC)])
        obs = harvest_report(report, timestamp="t")
        assert [o.phase for o in obs] == ["job", "makespan"]
        job, makespan = obs
        assert job.machine == "host"
        assert job.dataset == "demo"
        assert job.observed_s == 1.0
        assert job.predicted_s == 0.9
        assert job.ops == job_ops(SPEC) > 0
        assert job.hours == 1
        assert makespan.nprocs == 2  # the plan's worker count
        assert makespan.variant == "campaign"
        assert makespan.observed_s == 2.0
        assert makespan.predicted_s == 1.8

    def test_cache_hits_carry_no_signal(self):
        report = FakeReport([FakeResult(SPEC, from_cache=True)])
        assert harvest_report(report, timestamp="t") == []

    def test_science_cached_job_has_no_ops(self):
        report = FakeReport([FakeResult(SPEC, science_cached=True)])
        job = harvest_report(report, timestamp="t")[0]
        assert job.ops is None
        assert job.observed_s == 1.0

    def test_failed_jobs_skipped(self):
        report = FakeReport(
            [FakeResult(SPEC, ok=False), FakeResult(SPEC)])
        obs = harvest_report(report, timestamp="t")
        assert len([o for o in obs if o.phase == "job"]) == 1

    def test_unknown_predictions_become_none(self):
        report = FakeReport([FakeResult(SPEC, predicted_s=0.0)],
                            predicted_makespan_s=0.0)
        job, makespan = harvest_report(report, timestamp="t")
        assert job.predicted_s is None
        assert makespan.predicted_s is None

    def test_reharvest_is_idempotent_in_the_store(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        report = FakeReport([FakeResult(SPEC)])
        first = store.add_many(harvest_report(report, timestamp="t1"))
        assert first == 2
        # a later re-harvest stamps new provenance but adds nothing
        assert store.add_many(harvest_report(report, timestamp="t2")) == 0
        assert store.generation == 2


class TestHarvestTrace:
    def test_tracer_observations_cover_figure4_buckets(self, tiny_trace):
        tracer, _ = traced_replay(tiny_trace, get_machine("t3e"), 4)
        obs = observations_from_tracer(
            tracer, dataset="tiny", machine="t3e", nprocs=4,
            trace=tiny_trace, timestamp="t")
        assert obs
        assert {o.phase for o in obs} <= set(COMPONENTS)
        for o in obs:
            assert o.observed_s > 0
            assert o.predicted_s is not None and o.predicted_s > 0
            assert o.machine == "t3e" and o.nprocs == 4

    def test_perturbed_profile_changes_predictions_only(self, tiny_trace):
        tracer, _ = traced_replay(tiny_trace, get_machine("t3e"), 4)
        kw = dict(dataset="tiny", machine="t3e", nprocs=4,
                  trace=tiny_trace, timestamp="t")
        clean = observations_from_tracer(tracer, **kw)
        skewed = observations_from_tracer(
            tracer, machine_spec=get_machine("t3e").scaled(3.0, 3.0), **kw)
        assert [o.observed_s for o in clean] == [o.observed_s for o in skewed]
        assert any(c.predicted_s != s.predicted_s
                   for c, s in zip(clean, skewed))

    def test_timeline_observations_carry_traffic_and_ops(self, tiny_trace):
        _, timeline = traced_replay(tiny_trace, get_machine("t3e"), 4)
        obs = observations_from_timelines(
            [timeline], dataset="tiny", machine="t3e", nprocs=4,
            timestamp="t")
        comm = [o for o in obs if o.phase.startswith("comm:")]
        compute = [o for o in obs if o.phase.startswith("compute:")]
        assert comm and compute
        assert set(o.phase for o in obs) == {o.phase for o in comm + compute}
        for o in comm:
            # every comm record carries traffic counts, possibly a pure
            # local copy (messages 0, bytes_copied > 0)
            assert o.messages + o.bytes_moved + o.bytes_copied > 0
            assert o.ops is None
        assert any(o.messages > 0 for o in comm)
        for o in compute:
            assert o.ops > 0
            assert o.messages is None
