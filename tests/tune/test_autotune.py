"""Autotuner: candidate pricing, decision records, science safety."""

from dataclasses import replace

import pytest

from repro.sched.job import JobSpec
from repro.tune import (
    Autotuner,
    AutotunePlanner,
    CalibrationStore,
    Observation,
    TuneConfig,
)

SPEC = JobSpec(dataset="demo", hours=1, variant="data", machine="t3e",
               nprocs=4)

RECORD_KEYS = {"key", "tuned_key", "label", "science_key", "original",
               "chosen", "predicted", "candidates", "generation",
               "fingerprint"}


class FakeCache:
    def __init__(self, keys=()):
        self.keys = set(keys)

    def get_job(self, key):
        return {"hit": True} if key in self.keys else None

    def get_science(self, key):
        return None


class TestAutotuner:
    def test_default_candidate_space(self):
        tuner = Autotuner()
        cands = tuner._candidates(SPEC)
        # 1 variant x 1 cores x 3 machines x 4 node counts
        assert len(cands) == 12
        assert {c.science_key for c in cands} == {SPEC.science_key}

    def test_decision_record_shape(self):
        decision = Autotuner().tune(SPEC)
        record = decision.record
        assert set(record) == RECORD_KEYS
        assert record["key"] == SPEC.key
        assert record["tuned_key"] == decision.spec.key
        assert record["science_key"] == SPEC.science_key
        assert record["generation"] == 0
        assert record["fingerprint"] == ""
        assert len(record["candidates"]) == 12
        assert record["chosen"] in record["candidates"] or all(
            set(row) >= set(record["chosen"])
            for row in record["candidates"])
        # the argmin really is minimal over the candidate table
        totals = [row["total_s"] for row in record["candidates"]]
        assert record["predicted"]["total_s"] == min(totals)

    def test_tuning_never_touches_science(self):
        decision = Autotuner().tune(SPEC)
        assert decision.spec.science_key == SPEC.science_key

    def test_decisions_are_deterministic(self):
        a = Autotuner().tune(SPEC).record
        b = Autotuner().tune(SPEC).record
        assert a == b

    def test_sequential_spec_only_tunes_cores(self):
        spec = JobSpec(dataset="demo", hours=1, variant="sequential")
        decision = Autotuner().tune(spec)
        assert len(decision.record["candidates"]) == 1
        assert decision.spec.key == spec.key
        assert decision.record["chosen"]["machine"] == ""
        assert decision.record["chosen"]["nprocs"] == 0

    def test_cached_candidate_wins_under_wall_objective(self):
        slow = replace(SPEC, machine="paragon", nprocs=1)
        config = TuneConfig(objective="wall")
        baseline = Autotuner(config=config).tune(SPEC).record
        assert baseline["chosen"] != {
            "variant": "data", "machine": "paragon", "nprocs": 1,
            "cores_per_job": slow.cores_per_job,
        }  # sanity: not the natural argmin
        tuner = Autotuner(cache=FakeCache([slow.key]), config=config)
        record = tuner.tune(SPEC).record
        assert record["chosen"]["machine"] == "paragon"
        assert record["chosen"]["nprocs"] == 1
        assert record["predicted"]["wall_s"] == 0.0
        cached_rows = [r for r in record["candidates"] if r["cached"]]
        assert len(cached_rows) == 1
        assert cached_rows[0]["machine"] == "paragon"

    def test_tune_all_maps_submitted_to_tuned_keys(self):
        specs = [SPEC, replace(SPEC, nprocs=16)]
        tuned, records, key_map = Autotuner().tune_all(specs)
        assert len(tuned) == len(records) == 2
        assert key_map == {s.key: t.key for s, t in zip(specs, tuned)}
        # same science, same candidate table: both tune to one config
        assert tuned[0].key == tuned[1].key

    def test_model_carries_store_identity(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        store.add_many([
            Observation(dataset="demo", machine="host", nprocs=1,
                        variant="sequential", cores_per_job=1, phase="job",
                        observed_s=t, ops=700.0 * t)
            for t in (1.0, 2.0, 4.0)
        ])
        tuner = Autotuner(store=store)
        assert tuner.model.generation == store.generation == 3
        assert tuner.model.fingerprint == store.fingerprint != ""
        assert tuner.model.host_ops_per_second == pytest.approx(700.0)
        record = tuner.tune(SPEC).record
        assert record["generation"] == 3
        assert record["fingerprint"] == store.fingerprint

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TuneConfig(machines=())
        with pytest.raises(ValueError):
            TuneConfig(objective="fastest")

    def test_science_rewrite_is_refused(self, monkeypatch):
        tuner = Autotuner()
        monkeypatch.setattr(
            tuner, "_candidates",
            lambda spec: [replace(spec, hours=spec.hours + 1)])
        with pytest.raises(RuntimeError, match="science"):
            tuner.tune(SPEC)


class TestAutotunePlanner:
    def test_plan_is_tuned_and_stamped(self):
        tuner = Autotuner()
        plan = AutotunePlanner(tuner).plan([SPEC], workers=2)
        assert plan.tuning["generation"] == 0
        assert plan.tuning["fingerprint"] == ""
        assert [d["key"] for d in plan.tuning["decisions"]] == [SPEC.key]
        tuned_key = plan.tuning["decisions"][0]["tuned_key"]
        assert [j.spec.key for j in plan.jobs] == [tuned_key]
        assert plan.jobs[0].spec.science_key == SPEC.science_key
