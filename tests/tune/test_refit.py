"""Observation refit: robust fits, paper-constant fallbacks, drift."""

import math

import pytest

from repro.perfmodel.calibrate import (
    CalibratedModel,
    drift_report,
    observation_phase_key,
    refit_observations,
)
from repro.tune import Observation
from repro.vm.machine import HOST_OPS_PER_SECOND, get_machine


def job_obs(observed_s, ops=None, cores=1, dataset="demo", hours=1):
    return Observation(dataset=dataset, machine="host", nprocs=1,
                       variant="sequential", cores_per_job=cores,
                       phase="job", observed_s=observed_s, ops=ops,
                       hours=hours)


def phase_obs(phase, observed_s, ops):
    return Observation(dataset="demo", machine="host", nprocs=1,
                       variant="data", cores_per_job=1, phase=phase,
                       observed_s=observed_s, ops=ops)


def comm_obs(machine, m, b, c, observed_s):
    return Observation(dataset="demo", machine=machine, nprocs=4,
                       variant="data", cores_per_job=1, phase="comm:x",
                       observed_s=observed_s, messages=m, bytes_moved=b,
                       bytes_copied=c)


def pred_obs(observed_s, predicted_s):
    return Observation(dataset="demo", machine="t3e", nprocs=4,
                       variant="data", cores_per_job=1, phase="chemistry",
                       observed_s=observed_s, predicted_s=predicted_s)


class TestRefit:
    def test_empty_refit_is_the_paper_model(self):
        result = refit_observations([])
        assert result.model == CalibratedModel()
        assert result.notes == []
        assert result.model.host_ops_per_second == HOST_OPS_PER_SECOND
        assert result.model.tile_fraction is None
        assert result.model.machine_spec("t3e") == get_machine("t3e")

    def test_single_observation_falls_back_not_nan(self):
        result = refit_observations([job_obs(2.0, ops=1400.0)])
        assert result.model.host_ops_per_second == HOST_OPS_PER_SECOND
        assert math.isfinite(result.model.host_ops_per_second)
        assert {"kind": "fallback", "quantity": "host_ops_per_second",
                "samples": 1, "min_samples": 3} in result.notes

    def test_host_rate_refit_from_consistent_jobs(self):
        obs = [job_obs(t, ops=700.0 * t) for t in (1.0, 2.0, 4.0)]
        result = refit_observations(obs)
        assert result.model.host_ops_per_second == pytest.approx(700.0)
        assert result.notes == []
        assert result.model.samples == 3

    def test_multicore_jobs_do_not_feed_the_host_rate(self):
        obs = [job_obs(t, ops=700.0 * t) for t in (1.0, 2.0, 4.0)]
        obs.append(job_obs(1.0, ops=1e12, cores=4))
        result = refit_observations(obs)
        assert result.model.host_ops_per_second == pytest.approx(700.0)

    def test_outlier_rejected_before_the_median(self):
        rates = [699.9, 700.0, 700.1, 7e6]
        obs = [job_obs(1.0, ops=r) for r in rates]
        result = refit_observations(obs)
        assert result.model.host_ops_per_second == pytest.approx(700.0)
        assert {"kind": "outliers", "quantity": "host_ops_per_second",
                "samples": 4, "rejected": 1} in result.notes

    def test_phase_rates_refit_per_bucket(self):
        obs = [phase_obs("chemistry", t, 50.0 * t) for t in (1.0, 2.0, 3.0)]
        obs += [phase_obs("transport", 1.0, 10.0)]  # below threshold
        result = refit_observations(obs)
        assert result.model.phase_rates == {
            "chemistry": pytest.approx(50.0)}
        assert any(n["quantity"] == "phase_rate:transport"
                   and n["kind"] == "fallback" for n in result.notes)

    def test_comm_refit_recovers_known_constants(self):
        L, G, H = 2e-5, 1e-9, 5e-10
        rows = [(10, 1e6, 1e6), (20, 4e6, 2e6), (5, 2e6, 5e5),
                (40, 8e6, 1e6)]
        obs = [comm_obs("t3e", m, b, c, L * m + G * b + H * c)
               for m, b, c in rows]
        result = refit_observations(obs)
        fitted = result.model.comm["t3e"]
        assert fitted.latency == pytest.approx(L, rel=1e-5)
        assert fitted.gap == pytest.approx(G, rel=1e-5)
        assert fitted.copy_cost == pytest.approx(H, rel=1e-5)
        spec = result.model.machine_spec("t3e")
        assert spec.latency == pytest.approx(L, rel=1e-5)
        assert spec.seconds_per_op == get_machine("t3e").seconds_per_op

    def test_comm_falls_back_below_min_samples(self):
        obs = [comm_obs("t3e", 10, 1e6, 1e6, 0.01),
               comm_obs("t3e", 20, 2e6, 2e6, 0.02)]
        result = refit_observations(obs)
        assert result.model.comm == {}
        assert any(n["quantity"] == "comm:t3e"
                   and n["kind"] == "fallback" for n in result.notes)

    def test_machine_compute_rate_is_the_median(self):
        obs = [Observation(dataset="demo", machine="t3d", nprocs=4,
                           variant="data", cores_per_job=1,
                           phase="compute:chem", observed_s=s, ops=1e9)
               for s in (24.0, 25.0, 26.0)]
        result = refit_observations(obs)
        assert result.model.machine_rates["t3d"] == pytest.approx(2.5e-8)
        spec = result.model.machine_spec("t3d")
        assert spec.seconds_per_op == pytest.approx(2.5e-8)

    def test_tile_fraction_solved_from_speedup(self):
        obs = [job_obs(10.0) for _ in range(3)]
        obs += [job_obs(5.0, cores=4) for _ in range(3)]
        result = refit_observations(obs)
        # speedup 2 on 4 cores: fe = (1 - 1/2) / (1 - 1/4) = 2/3
        assert result.model.tile_fraction == pytest.approx(2.0 / 3.0)

    def test_tile_fraction_zero_when_cores_do_not_help(self):
        obs = [job_obs(10.0) for _ in range(3)]
        obs += [job_obs(20.0, cores=4) for _ in range(3)]
        result = refit_observations(obs)
        assert result.model.tile_fraction == 0.0


class TestDrift:
    def test_band_boundary_is_exclusive(self):
        obs = [pred_obs(1.0, 1.25) for _ in range(3)]
        on_band = drift_report(obs, band=0.25)
        assert len(on_band) == 1
        entry = on_band[0]
        assert entry["median_error"] == 0.25
        assert not entry["drifted"]  # exactly on the band is in band
        assert entry["samples"] == 3
        assert entry["phase_key"] == observation_phase_key(obs[0])
        assert drift_report(obs, band=0.2)[0]["drifted"]

    def test_skips_unpredicted_and_small_groups(self):
        obs = [pred_obs(1.0, 2.0)]  # one sample < min_samples
        obs += [Observation(dataset="demo", machine="t3e", nprocs=4,
                            variant="data", cores_per_job=1,
                            phase="transport", observed_s=1.0)
                for _ in range(5)]  # no prediction attached
        assert drift_report(obs) == []
        assert len(drift_report(obs, min_samples=1)) == 1

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            drift_report([], band=-0.1)

    def test_phase_key_shared_with_the_store(self):
        o = pred_obs(1.0, 1.0)
        assert observation_phase_key(o) == o.phase_key
