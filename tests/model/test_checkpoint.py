"""Tests for checkpoint/restart: split runs must equal unbroken runs."""

from dataclasses import replace

import numpy as np
import pytest

from repro.model import AirshedConfig, SequentialAirshed
from repro.model.checkpoint import (
    Checkpoint,
    load_checkpoint,
    resume_config,
    save_checkpoint,
)


class TestRoundtrip:
    def test_save_load(self, tiny_config, tiny_result, tmp_path):
        path = tmp_path / "ck.npz"
        saved = save_checkpoint(tiny_config, tiny_result, path)
        loaded = load_checkpoint(path)
        assert loaded.dataset_name == saved.dataset_name == "tiny"
        assert loaded.hours_completed == tiny_config.hours
        assert np.array_equal(loaded.conc, tiny_result.final_conc)

    def test_reject_non_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, magic="something-else", x=np.zeros(3))
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_next_start_hour_wraps(self):
        ck = Checkpoint("d", hours_completed=5, start_hour=22,
                        conc=np.zeros((1, 1, 1)))
        assert ck.next_start_hour() == 3


class TestRestartEquivalence:
    def test_split_run_equals_unbroken_run(self, tiny_dataset):
        """hours 0-3 in one go == hours 0-1, checkpoint, hours 2-3."""
        full_cfg = AirshedConfig(dataset=tiny_dataset, hours=4,
                                 start_hour=7, max_steps=4)
        full = SequentialAirshed(full_cfg).run()

        first_cfg = replace(full_cfg, hours=2)
        first = SequentialAirshed(first_cfg).run()
        ck = Checkpoint(
            dataset_name=tiny_dataset.name, hours_completed=2,
            start_hour=7, conc=first.final_conc,
        )
        second_cfg = resume_config(full_cfg, ck)
        assert second_cfg.hours == 2
        assert second_cfg.start_hour == 9
        second = SequentialAirshed(second_cfg).run()

        assert np.array_equal(second.final_conc, full.final_conc)
        assert second.hourly_mean["O3"] == full.hourly_mean["O3"][2:]

    def test_resume_through_file(self, tiny_dataset, tmp_path):
        full_cfg = AirshedConfig(dataset=tiny_dataset, hours=3,
                                 start_hour=7, max_steps=4)
        full = SequentialAirshed(full_cfg).run()

        first_cfg = replace(full_cfg, hours=1)
        first = SequentialAirshed(first_cfg).run()
        path = tmp_path / "ck.npz"
        save_checkpoint(first_cfg, first, path)

        resumed = resume_config(full_cfg, load_checkpoint(path))
        second = SequentialAirshed(resumed).run()
        assert np.array_equal(second.final_conc, full.final_conc)


class TestValidation:
    def test_wrong_dataset_rejected(self, tiny_config):
        ck = Checkpoint("other", 1, 7, np.zeros(tiny_config.dataset.shape))
        with pytest.raises(ValueError, match="dataset"):
            resume_config(tiny_config, ck)

    def test_wrong_shape_rejected(self, tiny_config):
        ck = Checkpoint("tiny", 1, 7, np.zeros((2, 2, 2)))
        with pytest.raises(ValueError, match="shape"):
            resume_config(tiny_config, ck)

    def test_exhausted_checkpoint_rejected(self, tiny_config):
        ck = Checkpoint("tiny", tiny_config.hours, 7,
                        np.zeros(tiny_config.dataset.shape))
        with pytest.raises(ValueError, match="covers"):
            resume_config(tiny_config, ck)

    def test_config_rejects_bad_initial_conc(self, tiny_dataset):
        with pytest.raises(ValueError):
            AirshedConfig(dataset=tiny_dataset, initial_conc=np.zeros((1, 2)))

    def test_config_accepts_matching_initial_conc(self, tiny_dataset):
        cfg = AirshedConfig(
            dataset=tiny_dataset,
            initial_conc=np.zeros(tiny_dataset.shape),
        )
        assert np.array_equal(
            cfg.starting_concentrations(), np.zeros(tiny_dataset.shape)
        )
