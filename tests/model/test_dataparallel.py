"""Tests for the data-parallel Airshed (live and replay)."""

import numpy as np
import pytest

from repro.model import (
    DataParallelAirshed,
    replay_data_parallel,
)
from repro.vm import CRAY_T3E, INTEL_PARAGON


class TestLiveExecution:
    @pytest.mark.parametrize("P", [1, 3, 4])
    def test_matches_sequential_reference(self, tiny_config, tiny_result, P):
        """THE correctness property: distributed == sequential."""
        par, _ = DataParallelAirshed(tiny_config, CRAY_T3E, P).run()
        assert np.allclose(
            par.final_conc, tiny_result.final_conc, rtol=1e-10, atol=1e-16
        )

    def test_live_timing_is_positive_and_decomposed(self, tiny_config):
        _, timing = DataParallelAirshed(tiny_config, CRAY_T3E, 4).run()
        assert timing.total_time > 0
        assert timing.breakdown["chemistry"] > 0
        assert timing.breakdown["transport"] > 0
        assert timing.breakdown["io"] > 0
        assert timing.breakdown["communication"] > 0
        assert timing.breakdown["other"] == 0.0

    def test_live_records_same_trace_as_sequential(self, tiny_config, tiny_trace):
        par, _ = DataParallelAirshed(tiny_config, CRAY_T3E, 4).run()
        for h_seq, h_par in zip(tiny_trace.hours, par.trace.hours):
            assert h_seq.nsteps == h_par.nsteps
            assert h_seq.input_bytes == h_par.input_bytes
            for s_seq, s_par in zip(h_seq.steps, h_par.steps):
                assert np.allclose(s_seq.chemistry_ops, s_par.chemistry_ops)
                assert np.allclose(s_seq.transport1_ops, s_par.transport1_ops)


class TestReplay:
    def test_replay_matches_live_timing(self, tiny_config):
        """Replaying the live run's own trace reproduces its timing."""
        par, live = DataParallelAirshed(tiny_config, CRAY_T3E, 4).run()
        rep = replay_data_parallel(par.trace, CRAY_T3E, 4)
        assert rep.total_time == pytest.approx(live.total_time, rel=1e-12)
        for key in ("chemistry", "transport", "io", "communication"):
            assert rep.breakdown[key] == pytest.approx(
                live.breakdown[key], rel=1e-12
            )

    def test_comm_step_count(self, tiny_trace):
        rep = replay_data_parallel(tiny_trace, CRAY_T3E, 4)
        assert rep.comm_steps == tiny_trace.expected_comm_steps()

    def test_single_node_communication_is_copy_only(self, tiny_trace):
        """At P=1 every redistribution degenerates to local copies (the
        paper's H term); there is no network traffic, and the copy cost
        is a small fraction of the total."""
        rep = replay_data_parallel(tiny_trace, CRAY_T3E, 1)
        assert rep.breakdown["communication"] < 0.05 * rep.total_time

    def test_speedup_with_nodes(self, tiny_trace):
        t1 = replay_data_parallel(tiny_trace, CRAY_T3E, 1).total_time
        t4 = replay_data_parallel(tiny_trace, CRAY_T3E, 4).total_time
        t16 = replay_data_parallel(tiny_trace, CRAY_T3E, 16).total_time
        assert t4 < t1
        assert t16 < t4
        assert t1 / t4 > 2.0  # decent speedup at 4 nodes

    def test_io_time_constant_with_nodes(self, tiny_trace):
        """Paper: I/O processing time stays flat as P grows."""
        io4 = replay_data_parallel(tiny_trace, CRAY_T3E, 4).breakdown["io"]
        io32 = replay_data_parallel(tiny_trace, CRAY_T3E, 32).breakdown["io"]
        assert io32 == pytest.approx(io4, rel=1e-9)

    def test_transport_stops_scaling_at_layer_count(self, tiny_trace):
        """3 layers -> transport time flat beyond P=3."""
        t3 = replay_data_parallel(tiny_trace, CRAY_T3E, 3).breakdown["transport"]
        t16 = replay_data_parallel(tiny_trace, CRAY_T3E, 16).breakdown["transport"]
        assert t16 == pytest.approx(t3, rel=1e-9)

    def test_chemistry_keeps_scaling(self, tiny_trace):
        c4 = replay_data_parallel(tiny_trace, CRAY_T3E, 4).breakdown["chemistry"]
        c16 = replay_data_parallel(tiny_trace, CRAY_T3E, 16).breakdown["chemistry"]
        assert c16 < 0.5 * c4

    def test_machine_ordering(self, tiny_trace):
        """Paper Figure 2: T3E fastest, then T3D, Paragon slowest."""
        from repro.vm import CRAY_T3D

        for P in (4, 16):
            t3e = replay_data_parallel(tiny_trace, CRAY_T3E, P).total_time
            t3d = replay_data_parallel(tiny_trace, CRAY_T3D, P).total_time
            para = replay_data_parallel(tiny_trace, INTEL_PARAGON, P).total_time
            assert t3e < t3d < para

    def test_comm_by_step_names(self, tiny_trace):
        rep = replay_data_parallel(tiny_trace, CRAY_T3E, 4)
        assert set(rep.comm_by_step) == {
            "D_Repl->D_Trans",
            "D_Trans->D_Chem",
            "D_Chem->D_Repl",
            "gather:outputhour",
        }
