"""Tests for the live (real-numerics) task-parallel driver."""

import numpy as np
import pytest

from repro.model import replay_task_parallel
from repro.model.taskparallel import TaskParallelAirshed
from repro.vm import CRAY_T3E, INTEL_PARAGON


class TestLiveTaskParallel:
    @pytest.fixture(scope="class")
    def live(self, tiny_config):
        return TaskParallelAirshed(tiny_config, INTEL_PARAGON, 8).run()

    def test_matches_sequential_numerics(self, live, tiny_result):
        """Pipelining changes timing, never the answer."""
        result, _ = live
        assert np.allclose(
            result.final_conc, tiny_result.final_conc, rtol=1e-10, atol=1e-16
        )
        for s in ("O3", "NO2", "AERO"):
            assert np.allclose(
                result.hourly_mean[s], tiny_result.hourly_mean[s]
            )

    def test_records_equivalent_trace(self, live, tiny_trace):
        result, _ = live
        assert result.trace.nhours == tiny_trace.nhours
        for h_live, h_seq in zip(result.trace.hours, tiny_trace.hours):
            assert h_live.nsteps == h_seq.nsteps
            assert h_live.input_bytes == h_seq.input_bytes

    def test_live_timing_matches_replay_of_own_trace(self, live):
        """The replay path and the live path price identically."""
        result, live_timing = live
        rep = replay_task_parallel(result.trace, INTEL_PARAGON, 8)
        assert rep.total_time == pytest.approx(live_timing.total_time, rel=1e-9)

    def test_pipeline_beats_pure_data_parallel_at_scale(self, tiny_config):
        from repro.model import DataParallelAirshed

        _, dp = DataParallelAirshed(tiny_config, INTEL_PARAGON, 24).run()
        _, tp = TaskParallelAirshed(tiny_config, INTEL_PARAGON, 24).run()
        assert tp.total_time < dp.total_time

    def test_validation(self, tiny_config):
        with pytest.raises(ValueError):
            TaskParallelAirshed(tiny_config, CRAY_T3E, 2)
        with pytest.raises(ValueError):
            TaskParallelAirshed(tiny_config, CRAY_T3E, 8, io_nodes=0)
