"""BatchedEnsemble is bitwise identical to N independent runs.

The batched engine's whole contract is that stacking members into one
structure-of-arrays sweep changes *nothing* about any member's numbers:
final concentrations, hourly means, surface snapshots and the complete
workload trace must equal — ``np.array_equal``, SHA-256 digests and
all — what the member's own :class:`SequentialAirshed` run produces.
That must hold on every chemistry backend (reference, numpy fast, C
fused), for even and odd member counts, and for arbitrary member
subsets (what the scheduler batches when some members are cached).
"""

import hashlib
import math

import numpy as np
import pytest

from repro.chemistry.cfused import load as load_cfused
from repro.chemistry.youngboris import YoungBorisSolver
from repro.model import AirshedConfig, BatchedEnsemble, SequentialAirshed
from repro.model.batched import run_batched
from repro.model.ensemble import EmissionEnsemble, EnsembleSummary

BACKENDS = ("reference", "numpy", "c")


@pytest.fixture
def backend(request, monkeypatch):
    """Force one of the three chemistry backends for the test body."""
    name = request.param
    if name == "reference":
        orig = YoungBorisSolver.__init__

        def no_fast(self, *args, **kwargs):
            kwargs["fast"] = False
            orig(self, *args, **kwargs)

        monkeypatch.setattr(YoungBorisSolver, "__init__", no_fast)
    elif name == "numpy":
        monkeypatch.setattr("repro.chemistry.cfused.load", lambda: None)
    elif load_cfused() is None:
        pytest.skip("no C compiler available; numpy fallback covered")
    return name


def _config(tiny_dataset, **overrides):
    kw = dict(dataset=tiny_dataset, hours=2, start_hour=7, max_steps=3,
              track_surface_fields=True)
    kw.update(overrides)
    return AirshedConfig(**kw)


def _sha(result) -> str:
    return hashlib.sha256(result.final_conc.tobytes()).hexdigest()


def _assert_identical(ref, got):
    assert np.array_equal(ref.final_conc, got.final_conc)
    assert _sha(ref) == _sha(got)
    assert ref.hourly_mean == got.hourly_mean
    for fr, fg in zip(ref.hourly_surface, got.hourly_surface):
        assert np.array_equal(fr, fg)
    for hr, hg in zip(ref.trace.hours, got.trace.hours):
        assert hr.input_bytes == hg.input_bytes
        assert hr.input_ops == hg.input_ops
        assert hr.pretrans_ops == hg.pretrans_ops
        assert hr.nsteps == hg.nsteps
        assert hr.output_bytes == hg.output_bytes
        for sr, sg in zip(hr.steps, hg.steps):
            assert np.array_equal(sr.transport1_ops, sg.transport1_ops)
            assert np.array_equal(sr.chemistry_ops, sg.chemistry_ops)
            assert sr.aerosol_ops == sg.aerosol_ops
            assert np.array_equal(sr.transport2_ops, sg.transport2_ops)


@pytest.mark.parametrize("backend", BACKENDS, indirect=True)
@pytest.mark.parametrize("members", [2, 3], ids=["N=2", "N=3-odd"])
def test_batched_members_bitwise_equal_independent(
    tiny_dataset, backend, members
):
    ens = BatchedEnsemble(_config(tiny_dataset), members=members,
                          sigma=0.3, seed=4)
    batched = ens.run_members()
    assert len(batched) == members
    for i in range(members):
        ref = SequentialAirshed(ens.member_config(i)).run()
        _assert_identical(ref, batched[i])


@pytest.mark.parametrize("backend", BACKENDS, indirect=True)
def test_arbitrary_subset_batches_are_exact(tiny_dataset, backend):
    """Batching any member subset is exact (partial-cache fusion)."""
    ens = BatchedEnsemble(_config(tiny_dataset, hours=1), members=3,
                          sigma=0.3, seed=9)
    configs = [ens.member_config(i) for i in range(3)]
    full = run_batched(configs)
    subset = run_batched([configs[0], configs[2]])
    _assert_identical(full[0], subset[0])
    _assert_identical(full[2], subset[1])


def test_summary_matches_independent_ensemble(tiny_dataset):
    cfg = _config(tiny_dataset, track_surface_fields=False)
    s_ind = EmissionEnsemble(cfg, members=3, sigma=0.4, seed=2).run()
    s_bat = BatchedEnsemble(cfg, members=3, sigma=0.4, seed=2).run()
    for species in s_ind.mean:
        assert np.array_equal(s_ind.mean[species], s_bat.mean[species])
        assert np.array_equal(s_ind.std[species], s_bat.std[species])
        assert np.array_equal(s_ind.peaks[species], s_bat.peaks[species])


def test_batch_counters_recorded(tiny_dataset):
    ens = BatchedEnsemble(_config(tiny_dataset, hours=1), members=2,
                          sigma=0.2, seed=1)
    ens.run_members()
    counters = ens.tracer.counters
    batches = counters.value("ensemble:batches")
    assert batches > 0
    assert counters.value("ensemble:batched_members") == 2 * batches


def test_mismatched_configs_rejected(tiny_dataset):
    a = _config(tiny_dataset, hours=1)
    b = _config(tiny_dataset, hours=2)
    with pytest.raises(ValueError, match="hours"):
        run_batched([a, b])
    with pytest.raises(ValueError, match="at least one"):
        run_batched([])


class TestRelativeSpreadContract:
    """Non-positive mean peaks yield NaN, never a silent 0.0."""

    def _summary(self, peaks):
        return EnsembleSummary(members=len(peaks), sigma=0.1, mean={},
                               std={}, peaks={"O3": np.asarray(peaks)})

    def test_zero_mean_peak_is_nan(self):
        assert math.isnan(self._summary([0.0, 0.0]).relative_spread("O3"))

    def test_negative_mean_peak_is_nan(self):
        assert math.isnan(
            self._summary([-2.0, 1.0]).relative_spread("O3")
        )

    def test_healthy_ensemble_is_finite(self):
        spread = self._summary([0.08, 0.12]).relative_spread("O3")
        assert spread == pytest.approx(0.2)
