"""The tiled chemistry driver wired into the sequential model.

``AirshedConfig.chem_workers`` threads a worker count down to the
:class:`~repro.model.tiled.TiledChemistry` engine; results must stay
bitwise identical to the default single-core run, and the tracer must
gain per-worker ``chem:tile:w*`` spans.
"""

import hashlib

import numpy as np
import pytest

from repro.datasets import get_dataset
from repro.model import AirshedConfig, SequentialAirshed
from repro.model.tiled import TiledChemistry


def _run(**cfg_kw):
    cfg = AirshedConfig(dataset=get_dataset("demo"), hours=1,
                        start_hour=12, **cfg_kw)
    return SequentialAirshed(cfg).run()


def _sha(result):
    return hashlib.sha256(result.final_conc.tobytes()).hexdigest()


class TestTiledSequentialDriver:
    def test_workers_preserve_bitwise_identity(self):
        golden = _run()
        assert _sha(_run(chem_workers=2)) == _sha(golden)
        assert _sha(_run(chem_workers=4, chem_tile_cols=17)) == _sha(golden)

    def test_tile_spans_emitted(self):
        # demo is 301 columns (> tile_min_cols), so a 2-worker run tiles
        cfg = AirshedConfig(dataset=get_dataset("demo"), hours=1,
                            start_hour=12, chem_workers=2)
        model = SequentialAirshed(cfg)
        model.run()
        names = {s.name for s in model.tracer.spans
                 if s.name.startswith("chem:tile:")}
        assert names == {"chem:tile:w0", "chem:tile:w1"}
        for s in model.tracer.spans:
            if s.name.startswith("chem:tile:"):
                assert s.end >= s.start
                assert s.attrs["cols"] > 0

    def test_no_tile_spans_on_single_core(self):
        cfg = AirshedConfig(dataset=get_dataset("demo"), hours=1,
                            start_hour=12)
        model = SequentialAirshed(cfg)
        model.run()
        assert not any(s.name.startswith("chem:tile:")
                       for s in model.tracer.spans)

    def test_config_validates_workers(self):
        with pytest.raises(ValueError):
            AirshedConfig(dataset=get_dataset("demo"), chem_workers=0)
        with pytest.raises(ValueError):
            AirshedConfig(dataset=get_dataset("demo"), chem_tile_cols=0)


class TestTiledChemistryEngine:
    def test_emit_tile_spans_without_pool_is_noop(self):
        from repro.chemistry import cit_mechanism
        from repro.observe import Tracer

        engine = TiledChemistry(cit_mechanism())
        tracer = Tracer()
        engine.emit_tile_spans(tracer, tracer.now())
        assert list(tracer.spans) == []
        engine.close()

    def test_engine_close_is_idempotent(self):
        from repro.chemistry import cit_mechanism

        engine = TiledChemistry(cit_mechanism(), workers=2)
        conc = np.full((engine.solver.mechanism.n_species, 10), 0.01)
        engine.integrate(conc, 60.0, 298.0, 0.5)
        engine.close()
        engine.close()
