"""Tests for the pipelined task-parallel Airshed."""

import pytest

from repro.model import replay_data_parallel, replay_task_parallel
from repro.vm import CRAY_T3E, INTEL_PARAGON


class TestTaskParallel:
    def test_needs_enough_nodes(self, tiny_trace):
        with pytest.raises(ValueError):
            replay_task_parallel(tiny_trace, CRAY_T3E, 2)
        with pytest.raises(ValueError):
            replay_task_parallel(tiny_trace, CRAY_T3E, 8, io_nodes=0)

    def test_runs_and_decomposes(self, tiny_trace):
        t = replay_task_parallel(tiny_trace, INTEL_PARAGON, 8)
        assert t.total_time > 0
        assert t.breakdown["chemistry"] > 0
        assert t.breakdown["io"] > 0

    def test_beats_data_parallel_at_scale(self, tiny_trace):
        """Paper Figure 9: task parallelism wins once I/O bottlenecks."""
        P = 32
        dp = replay_data_parallel(tiny_trace, INTEL_PARAGON, P).total_time
        tp = replay_task_parallel(tiny_trace, INTEL_PARAGON, P).total_time
        assert tp < dp

    def test_loses_at_small_node_counts(self, tiny_trace):
        """Giving 2 of 4 nodes to I/O starves the main computation."""
        dp = replay_data_parallel(tiny_trace, INTEL_PARAGON, 4).total_time
        tp = replay_task_parallel(tiny_trace, INTEL_PARAGON, 4).total_time
        assert tp > dp

    def test_io_overlap_hides_io_time(self, tiny_trace):
        """In steady state the pipeline hides I/O behind compute: the
        task-parallel makespan is below data-parallel compute + io."""
        P = 32
        dp = replay_data_parallel(tiny_trace, INTEL_PARAGON, P)
        tp = replay_task_parallel(tiny_trace, INTEL_PARAGON, P)
        hidden = dp.breakdown["io"] - (tp.total_time - (dp.total_time - dp.breakdown["io"]))
        assert hidden > 0  # some of the io cost vanished from the critical path

    def test_more_io_nodes_supported(self, tiny_trace):
        t = replay_task_parallel(tiny_trace, INTEL_PARAGON, 16, io_nodes=2)
        assert t.total_time > 0
