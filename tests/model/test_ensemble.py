"""Tests for emission-uncertainty ensembles."""

import numpy as np
import pytest

from repro.model import AirshedConfig
from repro.model.ensemble import EmissionEnsemble, PerturbedDataset


class TestPerturbedDataset:
    def test_factors_deterministic_per_seed(self, tiny_dataset):
        a = PerturbedDataset(tiny_dataset, member_seed=3, sigma=0.3)
        b = PerturbedDataset(tiny_dataset, member_seed=3, sigma=0.3)
        c = PerturbedDataset(tiny_dataset, member_seed=4, sigma=0.3)
        assert np.array_equal(a.emission_factors, b.emission_factors)
        assert not np.array_equal(a.emission_factors, c.emission_factors)

    def test_emissions_scaled(self, tiny_dataset):
        p = PerturbedDataset(tiny_dataset, member_seed=1, sigma=0.5)
        base = tiny_dataset.hourly(8).emissions
        pert = p.hourly(8).emissions
        expected = base * p.emission_factors[:, None]
        assert np.allclose(pert, expected)

    def test_zero_sigma_is_identity(self, tiny_dataset):
        p = PerturbedDataset(tiny_dataset, member_seed=1, sigma=0.0)
        assert np.allclose(p.emission_factors, 1.0)
        assert np.array_equal(
            p.hourly(9).emissions, tiny_dataset.hourly(9).emissions
        )

    def test_negative_sigma_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            PerturbedDataset(tiny_dataset, member_seed=0, sigma=-0.1)


class TestEnsemble:
    @pytest.fixture(scope="class")
    def summary(self, tiny_dataset):
        config = AirshedConfig(dataset=tiny_dataset, hours=2, start_hour=9,
                               max_steps=3)
        return EmissionEnsemble(config, members=4, sigma=0.4, seed=2).run()

    def test_summary_shapes(self, summary):
        assert summary.members == 4
        assert summary.mean["O3"].shape == (2,)
        assert summary.std["O3"].shape == (2,)
        assert summary.peaks["O3"].shape == (4,)

    def test_spread_is_nonzero(self, summary):
        """Perturbed inventories actually change the outcome."""
        assert summary.std["O3"].max() > 0
        assert summary.relative_spread("NO2") > 0

    def test_peak_interval_brackets_members(self, summary):
        lo, hi = summary.peak_interval("O3", quantile=1.0)
        assert lo == pytest.approx(summary.peaks["O3"].min())
        assert hi == pytest.approx(summary.peaks["O3"].max())
        assert lo <= summary.mean["O3"].max() * 1.5

    def test_reproducible(self, tiny_dataset, summary):
        config = AirshedConfig(dataset=tiny_dataset, hours=2, start_hour=9,
                               max_steps=3)
        again = EmissionEnsemble(config, members=4, sigma=0.4, seed=2).run()
        assert np.array_equal(again.peaks["O3"], summary.peaks["O3"])

    def test_unknown_species(self, summary):
        with pytest.raises(KeyError):
            summary.peak_interval("XENON")

    def test_validation(self, tiny_dataset):
        config = AirshedConfig(dataset=tiny_dataset, hours=1)
        with pytest.raises(ValueError):
            EmissionEnsemble(config, members=1)
        with pytest.raises(ValueError):
            EmissionEnsemble(config, sigma=-1.0)
        ens = EmissionEnsemble(config, members=3)
        with pytest.raises(ValueError):
            ens.member_config(3)
