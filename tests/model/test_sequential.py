"""Tests for the sequential Airshed reference driver."""

import numpy as np
import pytest

from repro.model import AirshedConfig, SequentialAirshed


class TestRun:
    def test_result_shapes(self, tiny_result, tiny_dataset):
        assert tiny_result.final_conc.shape == tiny_dataset.shape
        assert len(tiny_result.hourly_mean["O3"]) == 3

    def test_concentrations_physical(self, tiny_result):
        c = tiny_result.final_conc
        assert np.all(np.isfinite(c))
        assert np.all(c >= 0.0)
        assert c.max() < 50.0  # nothing runs away

    def test_daytime_photochemistry_builds_ozone(self, tiny_dataset):
        """Morning-to-afternoon run: domain O3 should rise."""
        cfg = AirshedConfig(dataset=tiny_dataset, hours=6, start_hour=8,
                            max_steps=3)
        res = SequentialAirshed(cfg).run()
        o3 = res.species_series("O3")
        assert o3[-1] > o3[0]

    def test_deterministic(self, tiny_config, tiny_result):
        again = SequentialAirshed(tiny_config).run()
        assert np.array_equal(again.final_conc, tiny_result.final_conc)

    def test_aerosol_accumulates(self, tiny_result):
        aero = tiny_result.species_series("AERO")
        assert aero[-1] > 0.0

    def test_surface_fields_optional(self, tiny_dataset):
        cfg = AirshedConfig(dataset=tiny_dataset, hours=1, start_hour=9,
                            max_steps=2, track_surface_fields=True)
        res = SequentialAirshed(cfg).run()
        assert len(res.hourly_surface) == 1
        assert res.hourly_surface[0].shape == (35, tiny_dataset.npoints)

    def test_species_series_unknown(self, tiny_result):
        with pytest.raises(KeyError):
            tiny_result.species_series("XENON")


class TestTrace:
    def test_trace_structure(self, tiny_trace, tiny_dataset):
        assert tiny_trace.shape == tiny_dataset.shape
        assert tiny_trace.nhours == 3
        for h in tiny_trace.hours:
            assert h.nsteps == len(h.steps)
            assert h.input_bytes > 0
            assert h.output_bytes > 0
            for s in h.steps:
                assert s.transport1_ops.shape == (tiny_dataset.layers,)
                assert s.chemistry_ops.shape == (tiny_dataset.npoints,)
                assert np.all(s.chemistry_ops > 0)
                assert s.aerosol_ops > 0

    def test_chemistry_dominates(self, tiny_trace):
        """Paper Figure 4: chemistry >> transport >> aerosol."""
        ops = tiny_trace.total_ops_by_phase()
        assert ops["chemistry"] > ops["transport"]
        assert ops["transport"] > ops["aerosol"]

    def test_chemistry_load_varies_by_point(self, tiny_trace):
        """Urban columns are stiffer and cost more substeps."""
        step = tiny_trace.hours[0].steps[0]
        assert step.chemistry_ops.max() > step.chemistry_ops.min()

    def test_comm_step_count_formula(self, tiny_trace):
        expected = sum(3 * h.nsteps + 1 for h in tiny_trace.hours) + 1
        assert tiny_trace.expected_comm_steps() == expected

    def test_runtime_step_counts_bounded(self, tiny_trace):
        for h in tiny_trace.hours:
            assert 2 <= h.nsteps <= 4


class TestConfig:
    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            AirshedConfig(dataset=tiny_dataset, hours=0)
        with pytest.raises(ValueError):
            AirshedConfig(dataset=tiny_dataset, min_steps=5, max_steps=2)
        with pytest.raises(ValueError):
            AirshedConfig(dataset=tiny_dataset, theta=2.0)
        with pytest.raises(ValueError):
            AirshedConfig(dataset=tiny_dataset, boundary_relax=-0.1)

    def test_hour_of_day_wraps(self, tiny_dataset):
        cfg = AirshedConfig(dataset=tiny_dataset, hours=30, start_hour=20)
        assert cfg.hour_of_day(0) == 20
        assert cfg.hour_of_day(5) == 1
