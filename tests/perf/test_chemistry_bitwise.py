"""The fast chemistry paths are bitwise identical to the reference.

Three implementations of the Young-Boris integrator coexist:

* the reference path (``fast=False``): allocation-per-substep numpy;
* the numpy fast path (``FastKernel(use_c=False)``): workspace-backed
  fused ufunc chains;
* the C fast path (``FastKernel(use_c=True)``): the same chains fused
  into single passes by ``repro/chemistry/_cfused.c``.

The overhaul's contract is *bitwise* equality between all of them —
``np.array_equal``, not ``allclose`` — across stiff and non-stiff
regimes, with and without emissions.
"""

import numpy as np
import pytest

from repro.chemistry import YoungBorisSolver, cit_mechanism
from repro.chemistry.cfused import load as load_cfused
from repro.chemistry.kernel import FastKernel

from tests.chemistry.test_youngboris import urban_state


@pytest.fixture(scope="module")
def mech():
    return cit_mechanism()


def solve(mech, conc, *, fast, use_c=None, emissions=None):
    solver = YoungBorisSolver(mech, fast=fast)
    if fast and use_c is not None:
        solver._kern = FastKernel(mech, use_c=use_c)
    return solver.integrate(conc, 300.0, 298.0, 0.6, emissions=emissions)


@pytest.mark.parametrize("with_emissions", [False, True],
                         ids=["no-emissions", "emissions"])
def test_numpy_fast_path_matches_reference(mech, with_emissions):
    conc = urban_state(mech, npts=23, seed=1)
    emissions = None
    if with_emissions:
        emissions = np.zeros_like(conc)
        emissions[mech.index["NO"]] = 1e-5
        emissions[mech.index["PAR"]] = 4e-5
    reference = solve(mech, conc, fast=False, emissions=emissions)
    fast = solve(mech, conc, fast=True, use_c=False, emissions=emissions)
    assert np.array_equal(reference, fast)


@pytest.mark.parametrize("with_emissions", [False, True],
                         ids=["no-emissions", "emissions"])
def test_c_fast_path_matches_reference(mech, with_emissions):
    if load_cfused() is None:
        pytest.skip("no C compiler available; numpy fallback already covered")
    conc = urban_state(mech, npts=23, seed=2)
    emissions = None
    if with_emissions:
        emissions = np.zeros_like(conc)
        emissions[mech.index["NO2"]] = 2e-5
    reference = solve(mech, conc, fast=False, emissions=emissions)
    fast_c = solve(mech, conc, fast=True, use_c=True, emissions=emissions)
    assert np.array_equal(reference, fast_c)


def test_backends_agree_on_single_point(mech):
    """A 1-point integration exercises the skinny-block edge case."""
    conc = urban_state(mech, npts=1, seed=3)
    reference = solve(mech, conc, fast=False)
    fast = solve(mech, conc, fast=True, use_c=False)
    assert np.array_equal(reference, fast)
    if load_cfused() is not None:
        assert np.array_equal(reference, solve(mech, conc, fast=True, use_c=True))


def test_repeated_integrations_share_workspaces(mech):
    """Workspace reuse across calls must not leak state between runs."""
    solver = YoungBorisSolver(mech, fast=True)
    conc_a = urban_state(mech, npts=11, seed=4)
    conc_b = urban_state(mech, npts=7, seed=5)
    first_a = solver.integrate(conc_a, 300.0, 298.0, 0.6)
    solver.integrate(conc_b, 300.0, 298.0, 0.6)  # different width in between
    again_a = solver.integrate(conc_a, 300.0, 298.0, 0.6)
    assert np.array_equal(first_a, again_a)
