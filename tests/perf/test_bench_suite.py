"""Smoke tests for the perf microbenchmark suite (quick mode)."""

import json

from benchmarks.perf import suite

QUICK_BENCHES = {name for name, (in_quick, _) in suite.BENCHES.items()
                 if in_quick}


def test_quick_suite_runs_and_reports(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    rc = suite.main(["--quick", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert set(report["benchmarks"]) == QUICK_BENCHES
    assert report["meta"]["mode"] == "quick"
    for name, res in report["benchmarks"].items():
        assert res["median_s"] > 0.0
        assert res["baseline_median_s"] > 0.0
        assert res["speedup_vs_baseline"] > 0.0


def test_baseline_covers_every_benchmark():
    baseline = json.loads(suite.BASELINE_PATH.read_text())["benchmarks"]
    assert set(baseline) == set(suite.BENCHES)
    chem = baseline["chemistry_hour_la"]
    assert len(chem["final_conc_sha256"]) == 64
