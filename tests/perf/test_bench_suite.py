"""Smoke tests for the perf microbenchmark suite (quick mode)."""

import json

from benchmarks.perf import suite

QUICK_BENCHES = {name for name, (in_quick, _) in suite.BENCHES.items()
                 if in_quick}


def test_quick_suite_runs_and_reports(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    rc = suite.main(["--quick", "--out", str(out)])
    assert rc == 0
    history = json.loads(out.read_text())
    assert len(history["runs"]) == 1
    report = history["runs"][-1]
    assert report["timestamp"]
    assert set(report["benchmarks"]) == QUICK_BENCHES
    assert report["meta"]["mode"] == "quick"
    for name, res in report["benchmarks"].items():
        assert res["median_s"] > 0.0
        assert res["baseline_median_s"] > 0.0
        assert res["speedup_vs_baseline"] > 0.0


def test_history_appends_runs(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    report = {"benchmarks": {}, "meta": {"mode": "quick"}}
    suite.append_run(report, out, timestamp="2026-01-01T00:00:00+00:00")
    history = suite.append_run(report, out)
    assert [r["timestamp"] for r in history["runs"]][0] == \
        "2026-01-01T00:00:00+00:00"
    assert len(history["runs"]) == 2
    assert json.loads(out.read_text()) == history


def test_history_migrates_old_single_report_format(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    old = {"benchmarks": {"b": {"median_s": 1.0}}, "meta": {"mode": "full"}}
    out.write_text(json.dumps(old))
    history = suite.load_history(out)
    assert len(history["runs"]) == 1
    # Migration stamps the file mtime as UTC ISO-8601, never null.
    stamp = history["runs"][0]["timestamp"]
    assert stamp and stamp.endswith("+00:00")
    assert history["runs"][0]["benchmarks"] == old["benchmarks"]
    # appending preserves the migrated record
    history = suite.append_run({"benchmarks": {}, "meta": {}}, out)
    assert len(history["runs"]) == 2


def test_history_heals_null_timestamps(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    legacy = {"runs": [
        {"benchmarks": {}, "meta": {}, "timestamp": None},
        {"benchmarks": {}, "meta": {}, "timestamp": "2026-01-01T00:00:00+00:00"},
    ]}
    out.write_text(json.dumps(legacy))
    history = suite.load_history(out)
    stamp = history["runs"][0]["timestamp"]
    assert stamp and stamp.endswith("+00:00")
    # records that already carry a timestamp are untouched
    assert history["runs"][1]["timestamp"] == "2026-01-01T00:00:00+00:00"
    # the next append rewrites the file healed
    suite.append_run({"benchmarks": {}, "meta": {}}, out)
    on_disk = json.loads(out.read_text())
    assert all(r["timestamp"] for r in on_disk["runs"])


def test_history_survives_corrupt_file(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    out.write_text("{not json")
    assert suite.load_history(out) == {"runs": []}


def test_tune_meta_attributes_runs_to_the_calibration_store(tmp_path):
    from repro.tune import CalibrationStore, Observation

    # an untuned / cold store records zeros, not an error
    cold = suite.tune_meta(tmp_path / "cold")
    assert cold["generation"] == 0
    assert cold["fingerprint"] == ""
    assert cold["n_decisions"] == 0
    assert "latest_decision" not in cold

    store = CalibrationStore(tmp_path / "warm")
    store.add(Observation(dataset="demo", machine="host", nprocs=1,
                          variant="sequential", cores_per_job=1,
                          phase="job", observed_s=1.0, ops=700.0))
    store.record_decision({"key": "k", "generation": 1})
    meta = suite.tune_meta(tmp_path / "warm")
    assert meta["generation"] == 1
    assert meta["fingerprint"] == store.fingerprint != ""
    assert meta["latest_decision"]["key"] == "k"


def test_baseline_covers_every_benchmark():
    baseline = json.loads(suite.BASELINE_PATH.read_text())["benchmarks"]
    assert set(baseline) == set(suite.BENCHES)
    chem = baseline["chemistry_hour_la"]
    assert len(chem["final_conc_sha256"]) == 64
