"""Replay timings are pinned bitwise to pre-overhaul goldens.

``golden_replay.json`` records, for a deterministic synthetic trace,
the complete timing surface (total time, per-phase breakdown, per-step
communication) produced by the replay *before* the hot-path overhaul
(batched communication charging, memoized plans, vectorised compute
charging).  The overhaul's contract is that it changes no simulated
number at all, so these comparisons use exact equality — a single
ULP of drift in any phase cost is a failure.
"""

import json
from pathlib import Path

from benchmarks.perf.suite import det_trace

from repro.model.dataparallel import replay_data_parallel
from repro.model.taskparallel import replay_task_parallel
from repro.vm.machine import CRAY_T3E

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_replay.json").read_text()
)["traces"]["la_shape_2h"]


def timing_dict(timing):
    return {
        "machine": timing.machine,
        "nprocs": timing.nprocs,
        "total_time": timing.total_time,
        "breakdown": timing.breakdown,
        "comm_by_step": timing.comm_by_step,
        "comm_steps": timing.comm_steps,
    }


def assert_exact(got, want):
    for field, value in want.items():
        assert got[field] == value, (
            f"{field}: got {got[field]!r}, golden {value!r}"
        )


def test_data_parallel_p64_matches_golden():
    got = timing_dict(replay_data_parallel(det_trace(), CRAY_T3E, 64))
    assert_exact(got, GOLDEN["dp_p64"])


def test_data_parallel_p8_matches_golden():
    got = timing_dict(replay_data_parallel(det_trace(), CRAY_T3E, 8))
    assert_exact(got, GOLDEN["dp_p8"])


def test_task_parallel_p16_matches_golden():
    got = timing_dict(replay_task_parallel(det_trace(), CRAY_T3E, 16))
    assert_exact(got, GOLDEN["tp_p16"])


def test_replay_is_deterministic_across_runs():
    first = timing_dict(replay_data_parallel(det_trace(), CRAY_T3E, 64))
    second = timing_dict(replay_data_parallel(det_trace(), CRAY_T3E, 64))
    assert first == second
