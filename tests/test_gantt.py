"""Tests for the text Gantt rendering."""

import pytest

from repro.analysis import gantt_rows, render_gantt
from repro.vm import Cluster, MachineSpec, Transfer

TOY = MachineSpec("toy", latency=1.0, gap=0.1, copy_cost=0.01,
                  seconds_per_op=1.0, io_seconds_per_byte=1.0)


@pytest.fixture
def cluster():
    c = Cluster(TOY, 4)
    c.charge_compute("work", {0: 10.0, 1: 10.0})
    c.charge_io("in", nbytes=5, node_id=2)
    c.charge_communication("x", [Transfer(0, 1, 10)], node_ids=[0, 1])
    return c


class TestGanttRows:
    def test_rows_attribute_phases_to_groups(self, cluster):
        rows = gantt_rows(cluster.timeline, {"a": [0, 1], "b": [2, 3]})
        kinds_a = {k for _, _, k in rows["a"]}
        kinds_b = {k for _, _, k in rows["b"]}
        assert kinds_a == {"compute", "comm"}
        assert kinds_b == {"io"}

    def test_cross_group_phase_touches_both(self):
        c = Cluster(TOY, 2)
        c.charge_communication("x", [Transfer(0, 1, 10)])
        rows = gantt_rows(c.timeline, {"a": [0], "b": [1]})
        assert len(rows["a"]) == len(rows["b"]) == 1


class TestRender:
    def test_render_structure(self, cluster):
        text = render_gantt(
            cluster.timeline, {"grpA": [0, 1], "grpB": [2, 3]}, width=40
        )
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("grpA |")
        assert lines[1].lstrip().startswith("grpB |")
        assert "#" in lines[0]       # compute glyph
        assert "I" in lines[1]       # io glyph
        assert "compute" in lines[-1]  # legend

    def test_bar_width_respected(self, cluster):
        text = render_gantt(cluster.timeline, {"a": [0, 1]}, width=25)
        bar = text.splitlines()[0].split("|")[1]
        assert len(bar) == 25

    def test_idle_dots(self, cluster):
        text = render_gantt(cluster.timeline, {"idle": [3]}, width=30)
        bar = text.splitlines()[0].split("|")[1]
        assert set(bar) == {"."}

    def test_empty_timeline(self):
        c = Cluster(TOY, 2)
        assert "empty" in render_gantt(c.timeline, {"a": [0]})

    def test_pipeline_shows_overlap(self, tiny_trace):
        """The Figure 8 picture: main busy while io stages tick."""
        from repro.fx.runtime import FxRuntime
        from repro.model.dataparallel import HourReplayer
        from repro.fx.tasks import PipelineStage

        rt = FxRuntime(TOY, 6)
        a, b, c = rt.split([1, 4, 1])
        rep = HourReplayer(b, tiny_trace)
        hours = tiny_trace.hours
        stages = [
            PipelineStage("in", a, lambda i: a.charge_io(
                "io:in", hours[i].input_bytes, ops=hours[i].input_ops)),
            PipelineStage("main", b, lambda i: rep.run_hour(hours[i], gather=False)),
            PipelineStage("out", c, lambda i: c.charge_io(
                "io:out", hours[i].output_bytes, ops=hours[i].output_ops)),
        ]
        rt.pipeline(stages).execute(len(hours))
        text = render_gantt(
            rt.timeline,
            {"in": a.node_ids, "main": b.node_ids, "out": c.node_ids},
            width=60,
        )
        main_bar = text.splitlines()[1].split("|")[1]
        assert main_bar.count("#") > 30  # main stage mostly busy
