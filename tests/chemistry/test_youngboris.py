"""Tests for the Young-Boris hybrid stiff integrator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chemistry import (
    Arrhenius,
    ChemistryStats,
    Mechanism,
    Reaction,
    YoungBorisSolver,
    cit_mechanism,
)


@pytest.fixture(scope="module")
def mech():
    return cit_mechanism()


def urban_state(mech, npts=4, seed=0):
    """A plausible polluted initial state (ppm)."""
    rng = np.random.default_rng(seed)
    c = np.zeros((mech.n_species, npts))
    base = {
        "NO": 0.05, "NO2": 0.08, "O3": 0.04, "CO": 2.0, "HCHO": 0.01,
        "ALD2": 0.01, "ETH": 0.02, "OLE": 0.01, "PAR": 0.4, "TOL": 0.02,
        "XYL": 0.02, "ISOP": 0.005, "SO2": 0.02, "NH3": 0.01, "MEOH": 0.005,
        "ETOH": 0.005, "MEK": 0.005,
    }
    for s, v in base.items():
        c[mech.index[s]] = v * rng.uniform(0.5, 1.5, size=npts)
    return c


class TestDecayProblem:
    """Analytically checkable single-species problems."""

    def make_decay(self, k_value):
        mech = Mechanism(
            ["A", "B"],
            [Reaction("decay", ("A",), (("B", 1.0),), Arrhenius(k_value))],
        )
        return mech

    @pytest.mark.parametrize("k,dt", [(0.01, 10.0), (5.0, 2.0), (100.0, 1.0)])
    def test_exponential_decay_accuracy(self, k, dt):
        """Both stiff and non-stiff regimes track exp(-k t)."""
        mech = self.make_decay(k)
        solver = YoungBorisSolver(mech)
        c = np.array([[1.0], [0.0]])
        out = solver.integrate(c, dt, 298.0, 0.0)
        exact = np.exp(-k * dt)
        # The hybrid scheme is ~2nd order non-stiff and exact-asymptotic
        # stiff; the transition regime carries the largest error.
        assert out[0, 0] == pytest.approx(exact, abs=max(0.08 * exact, 1e-9))
        # Mass conserved A + B = 1.
        assert out[0, 0] + out[1, 0] == pytest.approx(1.0, abs=1e-6)

    def test_stiff_equilibrium(self):
        """A <-> with fast source and sink relaxes to P/L."""
        mech = Mechanism(
            ["A", "SRC"],
            [
                Reaction("prod", ("SRC",), (("SRC", 1.0), ("A", 1.0)), Arrhenius(50.0)),
                Reaction("sink", ("A",), (), Arrhenius(500.0)),
            ],
        )
        solver = YoungBorisSolver(mech)
        c = np.array([[0.0], [1.0]])
        out = solver.integrate(c, 10.0, 298.0, 0.0)
        # Equilibrium: P = 50 * 1, L = 500 -> A_eq = 0.1.
        assert out[0, 0] == pytest.approx(0.1, rel=0.05)


class TestFullMechanism:
    def test_concentrations_stay_nonnegative(self, mech):
        solver = YoungBorisSolver(mech)
        c = urban_state(mech)
        out = solver.integrate(c, 300.0, 298.0, 1.0)
        assert np.all(out >= 0.0)

    def test_daytime_produces_ozone(self, mech):
        """The classic smog result: NOx + VOC + sunshine -> O3."""
        solver = YoungBorisSolver(mech)
        c = urban_state(mech)
        o3_before = c[mech.index["O3"]].copy()
        out = c
        for _ in range(6):
            out = solver.integrate(out, 600.0, 300.0, 1.0)
        assert np.all(out[mech.index["O3"]] > o3_before)

    def test_night_titrates_ozone(self, mech):
        solver = YoungBorisSolver(mech)
        c = urban_state(mech)
        out = solver.integrate(c, 1800.0, 290.0, 0.0)
        assert np.all(out[mech.index["O3"]] < c[mech.index["O3"]])

    def test_nitrogen_conserved(self, mech):
        solver = YoungBorisSolver(mech)
        c = urban_state(mech)
        n_before = mech.nitrogen_total(c)
        out = solver.integrate(c, 600.0, 298.0, 1.0)
        n_after = mech.nitrogen_total(out)
        assert np.allclose(n_after, n_before, rtol=1e-2)

    def test_emissions_increase_concentration(self, mech):
        solver = YoungBorisSolver(mech)
        c = np.zeros((mech.n_species, 2))
        E = np.zeros_like(c)
        E[mech.index["CO"]] = 1e-4
        out = solver.integrate(c, 100.0, 298.0, 0.0, emissions=E)
        assert np.all(out[mech.index["CO"]] > 0.009)

    def test_input_not_modified(self, mech):
        solver = YoungBorisSolver(mech)
        c = urban_state(mech)
        c_copy = c.copy()
        solver.integrate(c, 60.0, 298.0, 1.0)
        assert np.array_equal(c, c_copy)

    def test_1d_input_roundtrip(self, mech):
        solver = YoungBorisSolver(mech)
        c = urban_state(mech, npts=1)[:, 0]
        out = solver.integrate(c, 60.0, 298.0, 1.0)
        assert out.shape == (mech.n_species,)


class TestWorkAccounting:
    def test_stats_recorded(self, mech):
        solver = YoungBorisSolver(mech)
        stats = ChemistryStats()
        c = urban_state(mech, npts=8)
        solver.integrate(c, 300.0, 298.0, 1.0, stats=stats)
        assert stats.points == 8
        assert stats.substeps_total >= 8 * solver.min_substeps
        assert stats.max_substeps <= solver.max_substeps
        assert stats.ops > 0

    def test_work_is_deterministic(self, mech):
        solver = YoungBorisSolver(mech)
        c = urban_state(mech, npts=8)
        s1, s2 = ChemistryStats(), ChemistryStats()
        solver.integrate(c, 300.0, 298.0, 1.0, stats=s1)
        solver.integrate(c, 300.0, 298.0, 1.0, stats=s2)
        assert s1.substeps_total == s2.substeps_total
        assert s1.ops == s2.ops

    def test_polluted_points_take_more_substeps(self, mech):
        """Dirty air is stiffer -> more substeps -> chemistry load varies."""
        solver = YoungBorisSolver(mech)
        clean = np.zeros((mech.n_species, 1))
        clean[mech.index["O3"]] = 0.03
        dirty = urban_state(mech, npts=1)
        k = mech.rate_constants(298.0, 1.0)
        n_clean = solver.choose_substeps(clean, k, 300.0)
        n_dirty = solver.choose_substeps(dirty, k, 300.0)
        assert n_dirty[0] >= n_clean[0]

    def test_stats_merge(self):
        a = ChemistryStats(substeps_total=5, max_substeps=3, points=2, ops=10.0)
        b = ChemistryStats(substeps_total=7, max_substeps=9, points=1, ops=5.0)
        a.merge(b)
        assert a.substeps_total == 12
        assert a.max_substeps == 9
        assert a.points == 3
        assert a.ops == 15.0


class TestValidation:
    def test_bad_dt(self, mech):
        solver = YoungBorisSolver(mech)
        with pytest.raises(ValueError):
            solver.integrate(np.zeros((35, 1)), 0.0, 298.0, 1.0)

    def test_bad_species_count(self, mech):
        solver = YoungBorisSolver(mech)
        with pytest.raises(ValueError):
            solver.integrate(np.zeros((12, 1)), 60.0, 298.0, 1.0)

    def test_bad_emissions_shape(self, mech):
        solver = YoungBorisSolver(mech)
        with pytest.raises(ValueError):
            solver.integrate(
                np.zeros((35, 2)), 60.0, 298.0, 1.0, emissions=np.zeros((35, 3))
            )

    def test_bad_solver_params(self, mech):
        with pytest.raises(ValueError):
            YoungBorisSolver(mech, eps=0.0)
        with pytest.raises(ValueError):
            YoungBorisSolver(mech, min_substeps=0)
        with pytest.raises(ValueError):
            YoungBorisSolver(mech, min_substeps=10, max_substeps=5)


@settings(max_examples=20, deadline=None)
@given(
    dt=st.floats(min_value=10.0, max_value=900.0),
    sun=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_nonnegative_and_finite(dt, sun, seed):
    mech = cit_mechanism()
    solver = YoungBorisSolver(mech)
    c = urban_state(mech, npts=3, seed=seed)
    out = solver.integrate(c, dt, 298.0, sun)
    assert np.all(np.isfinite(out))
    assert np.all(out >= 0.0)
