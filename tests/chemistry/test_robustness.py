"""Failure-injection and robustness tests for the chemistry stack."""

import numpy as np
import pytest

from repro.chemistry import (
    AerosolModel,
    VerticalDiffusion,
    YoungBorisSolver,
    cit_mechanism,
    default_kz_profile,
    default_layer_heights,
)


@pytest.fixture(scope="module")
def mech():
    return cit_mechanism()


class TestSolverRobustness:
    def test_empty_point_set(self, mech):
        solver = YoungBorisSolver(mech)
        out = solver.integrate(np.zeros((35, 0)), 60.0, 298.0, 1.0)
        assert out.shape == (35, 0)

    def test_extreme_pollution_does_not_blow_up(self, mech):
        """10 ppm NOx / 100 ppm VOC (far beyond any real episode)."""
        solver = YoungBorisSolver(mech)
        c = np.zeros((35, 2))
        c[mech.index["NO"]] = 10.0
        c[mech.index["NO2"]] = 10.0
        c[mech.index["PAR"]] = 100.0
        c[mech.index["OLE"]] = 10.0
        out = solver.integrate(c, 600.0, 310.0, 1.0)
        assert np.all(np.isfinite(out))
        assert np.all(out >= 0)
        assert out.max() < 1e4

    def test_denormal_concentrations(self, mech):
        solver = YoungBorisSolver(mech)
        c = np.full((35, 2), 1e-300)
        out = solver.integrate(c, 600.0, 298.0, 1.0)
        assert np.all(np.isfinite(out))
        assert np.all(out >= 0)

    def test_cold_and_hot_temperatures(self, mech):
        solver = YoungBorisSolver(mech)
        c = np.zeros((35, 1))
        c[mech.index["O3"]] = 0.05
        c[mech.index["NO"]] = 0.01
        for T in (230.0, 273.0, 320.0):
            out = solver.integrate(c, 300.0, T, 0.5)
            assert np.all(np.isfinite(out)), T

    def test_iteration_budget_forced_completion(self, mech):
        """Even with a tiny max_substeps the integration covers dt."""
        solver = YoungBorisSolver(mech, max_substeps=3)
        c = np.zeros((35, 1))
        c[mech.index["NO2"]] = 0.1
        from repro.chemistry import ChemistryStats

        stats = ChemistryStats()
        out = solver.integrate(c, 3600.0, 298.0, 1.0, stats=stats)
        assert np.all(np.isfinite(out))
        assert stats.max_substeps <= 4 * 3 + 1

    def test_mixed_clean_and_dirty_points(self, mech):
        """Per-point adaptivity: a dirty point does not corrupt a clean
        point integrated in the same call."""
        solver = YoungBorisSolver(mech)
        clean = np.zeros((35, 1))
        clean[mech.index["O3"]] = 0.03
        dirty = np.zeros((35, 1))
        dirty[mech.index["NO"]] = 0.5
        dirty[mech.index["OLE"]] = 0.5
        both = np.concatenate([clean, dirty], axis=1)
        out_both = solver.integrate(both, 600.0, 298.0, 1.0)
        out_clean = solver.integrate(clean, 600.0, 298.0, 1.0)
        assert np.allclose(out_both[:, 0], out_clean[:, 0], rtol=1e-10)


class TestVerticalRobustness:
    def test_zero_diffusivity_is_identity(self):
        vd = VerticalDiffusion(
            heights=default_layer_heights(4), kz=np.zeros(3)
        )
        c = np.random.default_rng(0).uniform(0, 1, (2, 4, 3))
        out, _ = vd.step(c, 600.0)
        assert np.allclose(out, c)

    def test_huge_diffusivity_fully_mixes(self):
        h = default_layer_heights(4)
        vd = VerticalDiffusion(heights=h, kz=np.full(3, 1e6))
        c = np.zeros((1, 4, 1))
        c[0, 0, 0] = 1.0
        out, _ = vd.step(c, 3600.0)
        # Well-mixed: concentration uniform (mass-weighted).
        expected = (c[0, :, 0] * h).sum() / h.sum()
        assert np.allclose(out[0, :, 0], expected, rtol=1e-3)

    def test_tiny_dt_near_identity(self):
        vd = VerticalDiffusion(
            heights=default_layer_heights(5), kz=default_kz_profile(5)
        )
        c = np.random.default_rng(1).uniform(0, 1, (2, 5, 3))
        out, _ = vd.step(c, 1e-6)
        assert np.allclose(out, c, atol=1e-9)


class TestAerosolRobustness:
    def test_no_precursors_is_noop(self, mech):
        model = AerosolModel(mech)
        c = np.zeros((35, 5))
        before = c.copy()
        model.step(c)
        assert np.array_equal(c, before)

    def test_saturated_sink_caps_efficiency(self, mech):
        """Huge existing aerosol load: conversion capped at 100%."""
        model = AerosolModel(mech)
        c = np.zeros((35, 2))
        c[mech.index["SULF"]] = 0.01
        c[mech.index["NH3"]] = 0.1
        c[mech.index["AERO"]] = 100.0
        model.step(c)
        assert np.all(c[mech.index["SULF"]] >= -1e-15)
        assert np.all(c[mech.index["NH3"]] >= -1e-15)

    def test_idempotent_when_depleted(self, mech):
        model = AerosolModel(mech, base_rate=1.0)
        c = np.zeros((35, 1))
        c[mech.index["SULF"]] = 0.01
        c[mech.index["NH3"]] = 0.1
        model.step(c)
        first = c.copy()
        # SULF fully consumed at 100% efficiency; second step is a no-op
        # on sulfate.
        model.step(c)
        assert c[mech.index["AERO"], 0] == pytest.approx(
            first[mech.index["AERO"], 0]
        )
