"""ChemistryStats.merge contract for the per-point work profile."""

import numpy as np
import pytest

from repro.chemistry import ChemistryStats


def stats(substeps=None, **kw):
    s = ChemistryStats(**kw)
    if substeps is not None:
        s.per_point_substeps = np.asarray(substeps)
    return s


def test_merge_accumulates_scalars():
    a = stats(substeps_total=10, max_substeps=4, points=5, ops=100.0)
    a.merge(stats(substeps_total=6, max_substeps=7, points=5, ops=40.0))
    assert a.substeps_total == 16
    assert a.max_substeps == 7
    assert a.points == 10
    assert a.ops == 140.0


def test_merge_accumulates_same_shape_profiles_elementwise():
    a = stats(substeps=[2, 3, 4])
    a.merge(stats(substeps=[1, 1, 2]))
    assert a.per_point_substeps.tolist() == [3, 4, 6]


def test_merge_copies_profile_into_empty_receiver():
    a = stats()
    incoming = stats(substeps=[5, 6])
    a.merge(incoming)
    assert a.per_point_substeps.tolist() == [5, 6]
    # A copy, not a shared buffer: mutating one must not alias the other.
    incoming.per_point_substeps[0] = 99
    assert a.per_point_substeps.tolist() == [5, 6]


def test_merge_keeps_profile_when_other_has_none():
    a = stats(substeps=[2, 2])
    a.merge(stats())
    assert a.per_point_substeps.tolist() == [2, 2]


def test_merge_raises_on_shape_mismatch():
    a = stats(substeps=[1, 2, 3])
    with pytest.raises(ValueError, match="different"):
        a.merge(stats(substeps=[1, 2]))
