"""Scientific-behaviour tests of the photochemistry.

These check the emergent chemistry regimes rather than individual
reactions: the photostationary state, VOC sensitivity, nighttime NO3
chemistry and PAN as a NOx reservoir.
"""

import numpy as np
import pytest

from repro.chemistry import YoungBorisSolver, cit_mechanism


@pytest.fixture(scope="module")
def mech():
    return cit_mechanism()


@pytest.fixture(scope="module")
def solver(mech):
    return YoungBorisSolver(mech)


def base_state(mech, npts=1, **overrides):
    c = np.zeros((mech.n_species, npts))
    defaults = {"NO": 0.02, "NO2": 0.05, "O3": 0.03, "CO": 0.5}
    defaults.update(overrides)
    for s, v in defaults.items():
        c[mech.index[s]] = v
    return c


class TestPhotostationaryState:
    def test_leighton_relationship(self, mech, solver):
        """Without VOC chemistry, NO/NO2/O3 settle near the Leighton
        photostationary state: J1*[NO2] ~= k2*[NO]*[O3]."""
        c = base_state(mech, CO=0.0)
        out = c
        for _ in range(4):
            out = solver.integrate(out, 300.0, 298.0, 1.0)
        k = mech.rate_constants(298.0, 1.0)
        j1 = k[0]   # R1: NO2 photolysis
        k2 = k[1]   # R2: O3 + NO
        no = out[mech.index["NO"], 0]
        no2 = out[mech.index["NO2"], 0]
        o3 = out[mech.index["O3"], 0]
        assert j1 * no2 == pytest.approx(k2 * no * o3, rel=0.15)

    def test_no_ozone_without_sunlight(self, mech, solver):
        """Dark chamber with NOx+VOC: ozone cannot form."""
        c = base_state(mech, O3=0.0, PAR=0.5, OLE=0.02)
        out = solver.integrate(c, 1800.0, 298.0, 0.0)
        assert out[mech.index["O3"], 0] < 1e-6


class TestVOCSensitivity:
    def test_voc_addition_raises_ozone(self, mech, solver):
        """More VOC at fixed NOx -> more O3 (ridge-line behaviour)."""
        low = base_state(mech, PAR=0.05)
        high = base_state(mech, PAR=0.8, OLE=0.02, XYL=0.02)
        out_low, out_high = low, high
        for _ in range(6):
            out_low = solver.integrate(out_low, 600.0, 300.0, 1.0)
            out_high = solver.integrate(out_high, 600.0, 300.0, 1.0)
        assert (
            out_high[mech.index["O3"], 0] > out_low[mech.index["O3"], 0]
        )


class TestNighttimeChemistry:
    def test_n2o5_forms_at_night_with_ozone_excess(self, mech, solver):
        """NO3/N2O5 build up only without sunlight and without NO."""
        c = base_state(mech, NO=0.0, NO2=0.05, O3=0.08)
        night = solver.integrate(c, 3600.0, 285.0, 0.0)
        day = solver.integrate(c, 3600.0, 285.0, 1.0)
        n2o5_night = night[mech.index["N2O5"], 0]
        n2o5_day = day[mech.index["N2O5"], 0]
        assert n2o5_night > 5 * max(n2o5_day, 1e-12)

    def test_hno3_accumulates_via_n2o5_hydrolysis(self, mech, solver):
        c = base_state(mech, NO=0.0, NO2=0.05, O3=0.08)
        out = c
        for _ in range(4):
            out = solver.integrate(out, 3600.0, 285.0, 0.0)
        assert out[mech.index["HNO3"], 0] > 1e-4


class TestPANReservoir:
    def test_pan_forms_warm_day(self, mech, solver):
        c = base_state(mech, ALD2=0.02, PAR=0.3)
        out = c
        for _ in range(6):
            out = solver.integrate(out, 600.0, 298.0, 1.0)
        assert out[mech.index["PAN"], 0] > 1e-5

    def test_pan_decomposes_faster_when_hot(self, mech):
        """PAN thermal decomposition is strongly T-dependent."""
        k_cold = None
        k_hot = None
        for r in cit_mechanism().reactions:
            if r.label == "R28":
                k_cold = r.rate(280.0, 0.0)
                k_hot = r.rate(310.0, 0.0)
        assert k_hot > 20 * k_cold
