"""Tests for the globally-coupled aerosol step."""

import numpy as np
import pytest

from repro.chemistry import AerosolModel, cit_mechanism


@pytest.fixture(scope="module")
def mech():
    return cit_mechanism()


def state(mech, npts=6, sulf=0.01, nh3=0.05, aero=0.0):
    c = np.zeros((mech.n_species, npts))
    c[mech.index["SULF"]] = sulf
    c[mech.index["NH3"]] = nh3
    c[mech.index["AERO"]] = aero
    return c


class TestAerosolStep:
    def test_converts_sulfate_to_aerosol(self, mech):
        model = AerosolModel(mech)
        c = state(mech)
        model.step(c)
        assert np.all(c[mech.index["SULF"]] < 0.01)
        assert np.all(c[mech.index["AERO"]] > 0.0)

    def test_neutralisation_stoichiometry(self, mech):
        """2 NH3 consumed per SULF converted; sulfur conserved."""
        model = AerosolModel(mech)
        c = state(mech)
        s0 = c[mech.index["SULF"]].copy()
        n0 = c[mech.index["NH3"]].copy()
        model.step(c)
        ds = s0 - c[mech.index["SULF"]]
        dn = n0 - c[mech.index["NH3"]]
        assert np.allclose(dn, 2.0 * ds)
        assert np.allclose(c[mech.index["AERO"]], ds)

    def test_nh3_limited_regime(self, mech):
        model = AerosolModel(mech)
        c = state(mech, sulf=0.1, nh3=0.01)
        model.step(c)
        assert np.all(c[mech.index["NH3"]] >= 0)
        assert np.all(c[mech.index["SULF"]] >= 0)

    def test_global_coupling(self, mech):
        """The conversion at point 0 depends on aerosol at OTHER points.

        This is the property that makes the step non-parallelisable:
        computing it on a partition gives a different answer.
        """
        model = AerosolModel(mech)
        low = state(mech, npts=4, aero=0.0)
        high = state(mech, npts=4, aero=0.0)
        high[mech.index["AERO"], 1:] = 0.5  # loading elsewhere only
        model.step(low)
        model.step(high)
        # Point 0 starts identical in both, yet converts more when the
        # rest of the domain is loaded.
        assert (
            high[mech.index["AERO"], 0] > low[mech.index["AERO"], 0]
        )

    def test_partition_differs_from_global(self, mech):
        """Running per-partition disagrees with the replicated result."""
        model = AerosolModel(mech)
        c_global = state(mech, npts=4)
        c_global[mech.index["AERO"], 2:] = 0.3
        c_parts = c_global.copy()
        model.step(c_global)
        model.step(c_parts[:, :2])  # partition 1
        model.step(c_parts[:, 2:])  # partition 2
        assert not np.allclose(c_global, c_parts)

    def test_work_is_small_and_proportional(self, mech):
        model = AerosolModel(mech)
        ops4 = model.step(state(mech, npts=4))
        ops8 = model.step(state(mech, npts=8))
        assert ops8 == pytest.approx(2 * ops4)

    def test_3d_array_supported(self, mech):
        model = AerosolModel(mech)
        c = np.zeros((mech.n_species, 5, 7))
        c[mech.index["SULF"]] = 0.01
        c[mech.index["NH3"]] = 0.05
        ops = model.step(c)
        assert np.all(c[mech.index["AERO"]] > 0)
        assert ops == pytest.approx(5 * 7 * 8.0)


class TestValidation:
    def test_bad_params(self, mech):
        with pytest.raises(ValueError):
            AerosolModel(mech, base_rate=0.0)
        with pytest.raises(ValueError):
            AerosolModel(mech, sink_scale=0.0)

    def test_bad_species_dim(self, mech):
        model = AerosolModel(mech)
        with pytest.raises(ValueError):
            model.step(np.zeros((10, 4)))
