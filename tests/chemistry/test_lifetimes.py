"""Tests for mechanism analysis utilities (lifetimes, reaction maps)."""

import numpy as np
import pytest

from repro.chemistry import cit_mechanism


@pytest.fixture(scope="module")
def mech():
    return cit_mechanism()


def polluted_midday(mech):
    c = np.zeros((mech.n_species, 1))
    for s, v in {
        "NO": 0.03, "NO2": 0.06, "O3": 0.08, "CO": 1.5, "HCHO": 0.01,
        "PAR": 0.3, "OLE": 0.01, "OH": 2e-7, "HO2": 2e-5,
    }.items():
        c[mech.index[s]] = v
    return c


class TestLifetimes:
    def test_stiffness_spread_spans_orders_of_magnitude(self, mech):
        """The premise of the hybrid solver: radicals live < 1 min,
        reservoir species for hours, at the same point."""
        c = polluted_midday(mech)
        k = mech.rate_constants(298.0, 1.0)
        tau = mech.species_lifetimes(c, k)[:, 0]
        oh = tau[mech.index["OH"]]
        no3 = tau[mech.index["NO3"]]
        co = tau[mech.index["CO"]]
        pan = tau[mech.index["PAN"]]
        assert oh < 10.0            # radical: seconds
        assert no3 < 10.0
        assert co > 3600.0          # reservoir: hours+
        assert co / oh > 1e4        # the stiffness span

    def test_inert_species_infinite_lifetime(self, mech):
        c = polluted_midday(mech)
        k = mech.rate_constants(298.0, 1.0)
        tau = mech.species_lifetimes(c, k)[:, 0]
        assert np.isinf(tau[mech.index["AERO"]])  # no gas-phase sink

    def test_night_extends_photolytic_lifetimes(self, mech):
        c = polluted_midday(mech)
        k_day = mech.rate_constants(298.0, 1.0)
        k_night = mech.rate_constants(298.0, 0.0)
        tau_day = mech.species_lifetimes(c, k_day)[:, 0]
        tau_night = mech.species_lifetimes(c, k_night)[:, 0]
        i = mech.index["NO2"]
        assert tau_night[i] > 2 * tau_day[i]


class TestReactionMaps:
    def test_ozone_reactions(self, mech):
        r = mech.reactions_of("O3")
        assert "R1" in r["producing"]   # NO2 photolysis
        assert "R2" in r["consuming"]   # NO titration
        assert len(r["consuming"]) >= 4

    def test_every_species_reachable(self, mech):
        """No orphan species: everything is produced, consumed or
        explicitly externally driven (emissions/boundary only)."""
        external_only = {"AERO"}  # produced by the aerosol module
        for s in mech.species:
            r = mech.reactions_of(s)
            if s in external_only:
                continue
            assert r["consuming"] or r["producing"], s

    def test_unknown_species(self, mech):
        with pytest.raises(ValueError):
            mech.reactions_of("KRYPTONITE")
