"""Tests for the 35-species mechanism and rate laws."""

import numpy as np
import pytest

from repro.chemistry import (
    SPECIES_35,
    Arrhenius,
    Mechanism,
    Photolysis,
    Reaction,
    cit_mechanism,
)


@pytest.fixture(scope="module")
def mech():
    return cit_mechanism()


class TestRateLaws:
    def test_arrhenius_at_reference(self):
        k = Arrhenius(A=2.0, ea_over_R=0.0)
        assert k(298.0, 0.5) == pytest.approx(2.0)

    def test_arrhenius_temperature_dependence(self):
        k = Arrhenius(A=1.0, ea_over_R=1000.0)
        assert k(310.0, 0.0) > k(290.0, 0.0)

    def test_arrhenius_power_term(self):
        k = Arrhenius(A=1.0, n=2.0)
        assert k(600.0, 0.0) == pytest.approx(4.0)

    def test_arrhenius_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            Arrhenius(A=-1.0)
        with pytest.raises(ValueError):
            Arrhenius(A=1.0)(0.0, 0.0)

    def test_photolysis_scales_with_sun(self):
        j = Photolysis(J_max=1e-2)
        assert j(298.0, 0.0) == 0.0
        assert j(298.0, 0.5) == pytest.approx(5e-3)
        assert j(298.0, 1.0) == pytest.approx(1e-2)

    def test_photolysis_clamps_sun(self):
        j = Photolysis(J_max=1e-2)
        assert j(298.0, 2.0) == pytest.approx(1e-2)
        assert j(298.0, -1.0) == 0.0


class TestMechanismStructure:
    def test_exactly_35_species(self, mech):
        assert mech.n_species == 35
        assert mech.species == SPECIES_35

    def test_reasonable_reaction_count(self, mech):
        assert 40 <= mech.n_reactions <= 60

    def test_rate_constants_shape_and_sign(self, mech):
        k_day = mech.rate_constants(298.0, 1.0)
        k_night = mech.rate_constants(298.0, 0.0)
        assert k_day.shape == (mech.n_reactions,)
        assert np.all(k_day >= 0)
        assert np.all(k_night <= k_day)  # photolysis off at night
        assert np.sum(k_night < k_day) >= 10  # many photolytic channels

    def test_unknown_species_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Mechanism(["A"], [Reaction("X", ("B",), (("A", 1.0),), Arrhenius(1.0))])

    def test_duplicate_species_rejected(self):
        with pytest.raises(ValueError):
            Mechanism(["A", "A"], [])

    def test_bad_reactant_count_rejected(self):
        with pytest.raises(ValueError):
            Reaction("X", (), (("A", 1.0),), Arrhenius(1.0))
        with pytest.raises(ValueError):
            Reaction("X", ("A", "B", "C"), (), Arrhenius(1.0))

    def test_nonpositive_stoichiometry_rejected(self):
        with pytest.raises(ValueError):
            Reaction("X", ("A",), (("B", 0.0),), Arrhenius(1.0))


class TestKinetics:
    def test_no2_photolysis_produces_no_and_o3(self, mech):
        c = np.zeros((35, 1))
        c[mech.index["NO2"]] = 0.1
        k = mech.rate_constants(298.0, 1.0)
        dc = mech.tendency(c, k)
        assert dc[mech.index["NO"], 0] > 0
        assert dc[mech.index["O3"], 0] > 0
        assert dc[mech.index["NO2"], 0] < 0

    def test_titration_consumes_ozone_at_night(self, mech):
        c = np.zeros((35, 1))
        c[mech.index["O3"]] = 0.05
        c[mech.index["NO"]] = 0.05
        k = mech.rate_constants(298.0, 0.0)
        dc = mech.tendency(c, k)
        assert dc[mech.index["O3"], 0] < 0
        assert dc[mech.index["NO"], 0] < 0
        assert dc[mech.index["NO2"], 0] > 0

    def test_tendency_zero_for_empty_air(self, mech):
        c = np.zeros((35, 4))
        k = mech.rate_constants(298.0, 1.0)
        assert np.allclose(mech.tendency(c, k), 0.0)

    def test_production_loss_consistent_with_tendency(self, mech):
        rng = np.random.default_rng(1)
        c = rng.uniform(0.0, 0.1, size=(35, 6))
        k = mech.rate_constants(298.0, 0.7)
        P, L = mech.production_loss(c, k)
        assert np.allclose(mech.tendency(c, k), P - L * c)
        assert np.all(P >= 0)
        assert np.all(L >= 0)

    def test_nitrogen_conserved_by_tendency(self, mech):
        """d(total N)/dt == 0: every reaction balances nitrogen."""
        rng = np.random.default_rng(2)
        c = rng.uniform(0.0, 0.2, size=(35, 8))
        k = mech.rate_constants(302.0, 0.8)
        dc = mech.tendency(c, k)
        idx = mech.nitrogen_indices()
        dN = (dc[idx[:, 0]] * idx[:, 1][:, None]).sum(axis=0)
        assert np.allclose(dN, 0.0, atol=1e-12 * np.abs(dc).max())

    def test_vectorisation_matches_pointwise(self, mech):
        rng = np.random.default_rng(3)
        c = rng.uniform(0.0, 0.1, size=(35, 5))
        k = mech.rate_constants(298.0, 0.5)
        full = mech.tendency(c, k)
        for p in range(5):
            single = mech.tendency(c[:, p : p + 1], k)
            assert np.allclose(full[:, p], single[:, 0])
