"""Tests for implicit vertical diffusion."""

import numpy as np
import pytest

from repro.chemistry import (
    VerticalDiffusion,
    default_kz_profile,
    default_layer_heights,
)


def make(nlayers=5, deposition=None):
    return VerticalDiffusion(
        heights=default_layer_heights(nlayers),
        kz=default_kz_profile(nlayers),
        deposition=deposition,
    )


class TestDefaults:
    def test_layer_heights_grow(self):
        h = default_layer_heights(5)
        assert len(h) == 5
        assert np.all(np.diff(h) > 0)
        assert h[0] == pytest.approx(50.0)

    def test_kz_profile_length(self):
        assert len(default_kz_profile(5)) == 4
        assert len(default_kz_profile(1)) == 0

    def test_bad_nlayers(self):
        with pytest.raises(ValueError):
            default_layer_heights(0)
        with pytest.raises(ValueError):
            default_kz_profile(0)


class TestDiffusion:
    def test_uniform_column_is_steady_state(self):
        vd = make()
        c = np.full((3, 5, 4), 0.07)
        out, ops = vd.step(c, 600.0)
        assert np.allclose(out, 0.07)
        assert ops > 0

    def test_mass_conserved_without_deposition(self):
        vd = make()
        rng = np.random.default_rng(5)
        c = rng.uniform(0, 0.1, size=(3, 5, 6))
        before = vd.column_mass(c)
        out, _ = vd.step(c, 600.0)
        after = vd.column_mass(out)
        assert np.allclose(after, before, rtol=1e-10)

    def test_diffusion_smooths_gradients(self):
        vd = make()
        c = np.zeros((1, 5, 1))
        c[0, 0, 0] = 1.0  # all mass in the surface layer
        out, _ = vd.step(c, 1200.0)
        assert out[0, 0, 0] < 1.0
        assert np.all(out[0, 1:, 0] > 0.0)
        # Monotone decay with height for an initial surface pulse.
        assert np.all(np.diff(out[0, :, 0]) <= 1e-12)

    def test_longer_dt_mixes_more(self):
        vd = make()
        c = np.zeros((1, 5, 1))
        c[0, 0, 0] = 1.0
        short, _ = vd.step(c, 60.0)
        long_, _ = vd.step(c, 3600.0)
        assert long_[0, 0, 0] < short[0, 0, 0]

    def test_deposition_removes_mass(self):
        dep = np.array([0.01, 0.0])
        vd = make(deposition=dep)
        c = np.full((2, 5, 3), 0.05)
        before = vd.column_mass(c)
        out, _ = vd.step(c, 600.0)
        after = vd.column_mass(out)
        assert np.all(after[0] < before[0])          # deposited species
        assert np.allclose(after[1], before[1])       # inert species

    def test_single_layer_noop_without_deposition(self):
        vd = VerticalDiffusion(heights=np.array([100.0]), kz=np.zeros(0))
        c = np.full((2, 1, 3), 0.3)
        out, _ = vd.step(c, 600.0)
        assert np.allclose(out, c)

    def test_nonnegative(self):
        vd = make(deposition=np.array([0.05]))
        c = np.zeros((1, 5, 2))
        c[0, 2] = 1.0
        out, _ = vd.step(c, 3600.0)
        assert np.all(out >= 0)


class TestValidation:
    def test_bad_heights(self):
        with pytest.raises(ValueError):
            VerticalDiffusion(heights=np.array([1.0, -1.0]), kz=np.array([1.0]))

    def test_kz_length_mismatch(self):
        with pytest.raises(ValueError):
            VerticalDiffusion(heights=np.array([1.0, 2.0]), kz=np.zeros(0))

    def test_negative_kz(self):
        with pytest.raises(ValueError):
            VerticalDiffusion(heights=np.array([1.0, 2.0]), kz=np.array([-1.0]))

    def test_bad_conc_shape(self):
        vd = make(5)
        with pytest.raises(ValueError):
            vd.step(np.zeros((3, 4, 2)), 60.0)

    def test_bad_dt(self):
        vd = make(5)
        with pytest.raises(ValueError):
            vd.step(np.zeros((3, 5, 2)), -1.0)

    def test_deposition_length_mismatch(self):
        vd = make(5, deposition=np.array([0.01]))
        with pytest.raises(ValueError):
            vd.step(np.zeros((2, 5, 3)), 60.0)

    def test_negative_deposition(self):
        with pytest.raises(ValueError):
            make(5, deposition=np.array([-0.01]))
