"""Tiled multi-core chemistry is bitwise identical to sequential.

The tiled engine (:mod:`repro.chemistry.tiling`) fans the per-column
elementwise stages of :class:`~repro.chemistry.kernel.FastKernel` out
over contiguous column tiles on a persistent worker pool.  Its contract
is the same as every other fast path in this repo: **SHA-identical** to
the sequential run — for every worker count, every tile size (ragged
last tile, one-column tiles) and every backend (reference numpy, fused
numpy, fused C).
"""

import hashlib

import numpy as np
import pytest

from repro.chemistry import YoungBorisSolver, cit_mechanism
from repro.chemistry.cfused import load as load_cfused
from repro.chemistry.kernel import FastKernel
from repro.chemistry.tiling import TilePool, tile_spans

from tests.chemistry.test_youngboris import urban_state

NPTS = 97  # prime: every fixed tile width leaves a ragged last tile


@pytest.fixture(scope="module")
def mech():
    return cit_mechanism()


def _state(mech):
    conc = urban_state(mech, npts=NPTS, seed=11)
    emissions = np.zeros_like(conc)
    emissions[mech.index["NO"]] = 1e-5
    emissions[mech.index["PAR"]] = 4e-5
    return conc, emissions


def _solve(mech, conc, emissions, *, fast=True, use_c=None,
           workers=1, tile_cols=None):
    """Run one integration, forcing backend and tiling explicitly.

    Tiny states tile too: ``tile_min_cols=1`` removes the perf-only
    threshold so the test exercises the tiled machinery even at
    ``NPTS=97`` columns.
    """
    solver = YoungBorisSolver(mech, fast=fast, workers=workers,
                              tile_cols=tile_cols, tile_min_cols=1)
    if fast and use_c is not None:
        kern = FastKernel(mech, use_c=use_c)
        solver._kern = kern
        if workers > 1 or tile_cols is not None:
            solver._pool = TilePool(workers)
            kern.configure_tiling(solver._pool, tile_cols, 1)
    try:
        return solver.integrate(conc, 300.0, 298.0, 0.6,
                                emissions=emissions)
    finally:
        solver.close()


def _sha(arr):
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


class TestBitwiseIdentity:
    """workers x tile sizes x backends, SHA-256 against sequential."""

    @pytest.mark.parametrize("use_c", [False, True], ids=["numpy", "c"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("tile_cols", [None, 1, 7, 50],
                             ids=["balanced", "tile1", "tile7", "tile50"])
    def test_tiled_sha_matches_sequential_golden(self, mech, use_c,
                                                 workers, tile_cols):
        if use_c and load_cfused() is None:
            pytest.skip("no C compiler available")
        conc, emissions = _state(mech)
        golden = _solve(mech, conc, emissions, use_c=use_c)
        tiled = _solve(mech, conc, emissions, use_c=use_c,
                       workers=workers, tile_cols=tile_cols)
        assert _sha(tiled) == _sha(golden)
        assert np.array_equal(tiled, golden)

    def test_sequential_golden_matches_reference_backend(self, mech):
        """The golden itself equals the allocation-per-substep path."""
        conc, emissions = _state(mech)
        reference = _solve(mech, conc, emissions, fast=False)
        for use_c in ([False, True] if load_cfused() else [False]):
            assert np.array_equal(
                _solve(mech, conc, emissions, use_c=use_c), reference
            )

    def test_tiled_cross_backend_identity(self, mech):
        """Tiled C and tiled numpy agree with each other."""
        if load_cfused() is None:
            pytest.skip("no C compiler available")
        conc, emissions = _state(mech)
        a = _solve(mech, conc, emissions, use_c=True, workers=4,
                   tile_cols=13)
        b = _solve(mech, conc, emissions, use_c=False, workers=3,
                   tile_cols=29)
        assert _sha(a) == _sha(b)

    def test_driver_level_workers_knob(self, mech):
        """The public ``workers=`` knob alone preserves identity."""
        conc, emissions = _state(mech)
        golden = _solve(mech, conc, emissions)
        solver = YoungBorisSolver(mech, workers=2, tile_min_cols=1)
        try:
            out = solver.integrate(conc, 300.0, 298.0, 0.6,
                                   emissions=emissions)
        finally:
            solver.close()
        assert np.array_equal(out, golden)


class TestTileSpans:
    def test_balanced_spans_cover_range(self):
        spans = tile_spans(100, 4)
        assert spans == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_ragged_last_tile(self):
        spans = tile_spans(97, 4)
        assert spans[0] == (0, 25)
        assert spans[-1] == (75, 97)
        assert sum(b - a for a, b in spans) == 97

    def test_fixed_width_and_single_column(self):
        assert tile_spans(10, 2, tile_cols=3) == [
            (0, 3), (3, 6), (6, 9), (9, 10)
        ]
        assert tile_spans(3, 2, tile_cols=1) == [(0, 1), (1, 2), (2, 3)]

    def test_more_workers_than_columns(self):
        spans = tile_spans(2, 8)
        assert sum(b - a for a, b in spans) == 2
        assert all(b > a for a, b in spans)


class TestTilePool:
    def test_run_executes_every_span(self):
        pool = TilePool(3)
        try:
            hits = np.zeros(30, dtype=np.int64)

            def fn(si, c0, c1):
                hits[c0:c1] += 1

            pool.run(fn, tile_spans(30, 3, tile_cols=4))
            assert np.array_equal(hits, np.ones(30, dtype=np.int64))
        finally:
            pool.close()

    def test_worker_exception_propagates(self):
        pool = TilePool(2)
        try:
            def boom(si, c0, c1):
                raise RuntimeError("tile failed")

            with pytest.raises(RuntimeError, match="tile failed"):
                pool.run(boom, tile_spans(8, 2))
        finally:
            pool.close()

    def test_snapshot_accounts_work(self):
        pool = TilePool(2)
        try:
            pool.run(lambda si, c0, c1: None, tile_spans(10, 2))
            snap = pool.snapshot()
            assert [s["worker"] for s in snap] == [0, 1]
            assert sum(s["tasks"] for s in snap) == 2
            assert sum(s["cols"] for s in snap) == 10
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = TilePool(2)
        pool.close()
        pool.close()

    def test_validates_workers(self):
        with pytest.raises(ValueError):
            TilePool(0)
