"""End-to-end integration tests across every subsystem."""

import numpy as np
import pytest

from repro.core import (
    AirshedConfig,
    CRAY_T3E,
    INTEL_PARAGON,
    DataParallelAirshed,
    PerformancePredictor,
    SequentialAirshed,
    replay_data_parallel,
    replay_task_parallel,
    run_integrated,
)


class TestFullStack:
    """One coherent story: simulate -> distribute -> predict -> couple."""

    @pytest.fixture(scope="class")
    def stack(self, tiny_dataset):
        config = AirshedConfig(dataset=tiny_dataset, hours=2, start_hour=8,
                               max_steps=3)
        seq = SequentialAirshed(config).run()
        par, live_timing = DataParallelAirshed(config, CRAY_T3E, 6).run()
        return config, seq, par, live_timing

    def test_three_execution_paths_agree(self, stack):
        config, seq, par, live_timing = stack
        # sequential == live parallel numerics
        assert np.allclose(seq.final_conc, par.final_conc, rtol=1e-10)
        # live timing == replay timing
        rep = replay_data_parallel(par.trace, CRAY_T3E, 6)
        assert rep.total_time == pytest.approx(live_timing.total_time,
                                               rel=1e-12)

    def test_prediction_tracks_all_machines(self, stack):
        _, seq, _, _ = stack
        for machine in (CRAY_T3E, INTEL_PARAGON):
            predictor = PerformancePredictor(seq.trace, machine)
            for P in (2, 8, 32):
                measured = replay_data_parallel(seq.trace, machine, P)
                assert predictor.predict_total(P) == pytest.approx(
                    measured.total_time, rel=0.2
                ), (machine.name, P)

    def test_pipeline_and_coupling_compose(self, stack, tiny_dataset):
        config, seq, _, _ = stack
        tp = replay_task_parallel(seq.trace, INTEL_PARAGON, 16)
        assert tp.total_time > 0
        native = run_integrated(seq.trace, tiny_dataset, INTEL_PARAGON, 16,
                                mode="native")
        foreign = run_integrated(seq.trace, tiny_dataset, INTEL_PARAGON, 16,
                                 mode="foreign")
        assert np.allclose(native.exposure, foreign.exposure)
        assert foreign.total_time >= native.total_time

    def test_figures_regenerate_from_fresh_trace(self, stack):
        from repro.analysis import all_figures

        _, seq, _, _ = stack
        figs = all_figures(seq.trace)
        assert len(figs) == 6
        for name, (header, rows) in figs.items():
            assert rows, name


@pytest.mark.slow
class TestNortheastDataset:
    """The paper's larger dataset, exercised end to end (slow)."""

    def test_ne_full_stack(self):
        from repro.datasets import make_ne

        ds = make_ne()
        assert ds.shape == (35, 5, 3328)
        config = AirshedConfig(dataset=ds, hours=1, start_hour=12,
                               max_steps=2)
        seq = SequentialAirshed(config).run()
        assert np.all(np.isfinite(seq.final_conc))
        assert seq.trace.npoints == 3328
        t4 = replay_data_parallel(seq.trace, CRAY_T3E, 4).total_time
        t64 = replay_data_parallel(seq.trace, CRAY_T3E, 64).total_time
        assert t64 < t4
