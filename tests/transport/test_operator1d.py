"""Tests for the 1-D splitting transport baseline."""

import numpy as np
import pytest

from repro.grid import UniformGrid
from repro.transport import Splitting1DTransport


@pytest.fixture
def grid():
    return UniformGrid(domain=(100.0, 100.0), nx=25, ny=25)


def blob(grid, cx, cy, sigma=8.0):
    pts = grid.points()
    d2 = (pts[:, 0] - cx) ** 2 + (pts[:, 1] - cy) ** 2
    return np.exp(-0.5 * d2 / sigma**2)


class TestSweeps:
    def test_mass_conserved_uniform_wind(self, grid):
        """An interior blob keeps its mass (open-boundary leakage ~0)."""
        tr = Splitting1DTransport(grid, diffusivity=1e-3)
        u = np.tile([0.008, -0.003], (grid.npoints, 1))
        c = blob(grid, 50.0, 50.0, sigma=5.0)[None, :]
        m0 = tr.total_mass(c)[0]
        for _ in range(10):
            c, _ = tr.step(c, u, dt=60.0)
        assert tr.total_mass(c)[0] == pytest.approx(m0, rel=1e-4)

    def test_mass_conserved_varying_wind(self, grid):
        """Donor-cell fluxes conserve interior mass for any wind."""
        rng = np.random.default_rng(7)
        tr = Splitting1DTransport(grid, diffusivity=1e-3)
        u = rng.uniform(-0.01, 0.01, size=(grid.npoints, 2))
        c = blob(grid, 50.0, 50.0, sigma=5.0)[None, :]
        m0 = tr.total_mass(c)[0]
        for _ in range(10):
            c, _ = tr.step(c, u, dt=60.0)
        assert tr.total_mass(c)[0] == pytest.approx(m0, rel=1e-4)

    def test_blob_advects_downwind(self, grid):
        tr = Splitting1DTransport(grid, diffusivity=1e-5)
        u = np.tile([0.01, 0.0], (grid.npoints, 1))
        c = blob(grid, 30.0, 50.0)[None, :]
        pts = grid.points()

        def centroid(c):
            return (c[0] * pts[:, 0]).sum() / c[0].sum()

        x0 = centroid(c)
        for _ in range(20):
            c, _ = tr.step(c, u, dt=60.0)
        # 20 * 60 s * 0.01 km/s = 12 km.
        assert centroid(c) - x0 == pytest.approx(12.0, rel=0.2)

    def test_nonnegative(self, grid):
        """Implicit upwind is positivity-preserving."""
        tr = Splitting1DTransport(grid, diffusivity=1e-3)
        u = np.tile([0.02, 0.015], (grid.npoints, 1))
        c = np.zeros((1, grid.npoints))
        c[0, grid.npoints // 2] = 1.0
        for _ in range(10):
            c, _ = tr.step(c, u, dt=120.0)
            assert c.min() >= -1e-15

    def test_constant_preserved_with_matching_inflow(self, grid):
        tr = Splitting1DTransport(grid, diffusivity=1e-3)
        u = np.tile([0.01, -0.01], (grid.npoints, 1))
        c = np.full((2, grid.npoints), 0.4)
        out, _ = tr.step(c, u, dt=60.0, boundary=0.4)
        assert np.allclose(out, 0.4, atol=1e-12)

    def test_clean_inflow_dilutes_edges(self, grid):
        tr = Splitting1DTransport(grid, diffusivity=1e-3)
        u = np.tile([0.01, 0.0], (grid.npoints, 1))
        c = np.full((1, grid.npoints), 0.4)
        out, _ = tr.step(c, u, dt=120.0, boundary=0.0)
        field = grid.to_field(out[0])
        assert field[0].max() < 0.4             # upwind column diluted
        # Downwind edge only sees diffusive exchange, upwind edge sees
        # advective inflow of clean air as well: it is diluted more.
        assert field[0].min() < field[-1].min()
        # The deep interior is untouched (implicit boundary influence
        # decays within a few cells).
        assert np.allclose(field[10:15, 10:15], 0.4, atol=1e-6)

    def test_ops_and_parallelism(self, grid):
        tr = Splitting1DTransport(grid, diffusivity=1e-3)
        u = np.zeros((grid.npoints, 2))
        _, ops = tr.step(np.zeros((3, grid.npoints)), u, dt=60.0)
        assert ops == pytest.approx(2 * 3 * grid.npoints * 10.0)
        # 1-D operator parallelism: layers x cross dimension (paper §3).
        assert tr.degree_of_parallelism(layers=5) == 5 * 25

    def test_validation(self, grid):
        tr = Splitting1DTransport(grid, diffusivity=1e-3)
        with pytest.raises(ValueError):
            tr.step(np.zeros((1, 7)), np.zeros((grid.npoints, 2)), dt=60.0)
        with pytest.raises(ValueError):
            tr.step(np.zeros((1, grid.npoints)), np.zeros((grid.npoints, 2)), dt=0.0)
        with pytest.raises(ValueError):
            Splitting1DTransport(grid, diffusivity=-1.0)


class TestSplittingError:
    def test_cross_flow_less_accurate_than_axis_flow(self, grid):
        """Diagonal (cross-flow) advection suffers splitting+corner error
        relative to axis-aligned flow at the same speed — the reason the
        paper's 2-D operator can take larger steps in cross-flow."""
        tr = Splitting1DTransport(grid, diffusivity=1e-6)
        speed = 0.01

        def run(ux, uy, hours):
            u = np.tile([ux, uy], (grid.npoints, 1))
            c = blob(grid, 35.0, 35.0)[None, :]
            for _ in range(hours):
                c, _ = tr.step(c, u, dt=120.0)
            return c

        # Axis-aligned: peak retention after transport.
        c_axis = run(speed, 0.0, 10)
        c_diag = run(speed / np.sqrt(2), speed / np.sqrt(2), 10)
        assert c_diag.max() <= c_axis.max() + 1e-9
