"""Tests for the analytic wind field."""

import numpy as np
import pytest

from repro.transport import WindField


@pytest.fixture
def wind():
    return WindField(domain=(200.0, 150.0))


class TestVelocity:
    def test_shape(self, wind):
        pts = np.array([[10.0, 10.0], [100.0, 75.0], [190.0, 140.0]])
        u = wind.velocity(pts, layer=0, hour=3.0)
        assert u.shape == (3, 2)

    def test_divergence_free_numerically(self, wind):
        """du/dx + dv/dy == 0 for the synoptic + solid-body field."""
        eps = 1e-4
        p = np.array([[80.0, 60.0]])
        px = p + [[eps, 0.0]]
        py = p + [[0.0, eps]]
        u0, ux, uy = (wind.velocity(q, 0, 5.0) for q in (p, px, py))
        div = (ux[0, 0] - u0[0, 0]) / eps + (uy[0, 1] - u0[0, 1]) / eps
        assert abs(div) < 1e-8

    def test_rotates_with_hour(self, wind):
        p = np.array([[100.0, 75.0]])  # domain centre: vortex term vanishes
        u0 = wind.velocity(p, 0, 0.0)
        u6 = wind.velocity(p, 0, 6.0)  # quarter period
        assert u0[0, 0] == pytest.approx(wind.base_speed)
        assert u6[0, 1] == pytest.approx(wind.base_speed)

    def test_shear_scales_with_layer(self, wind):
        p = np.array([[50.0, 50.0]])
        u0 = np.linalg.norm(wind.velocity(p, 0, 2.0))
        u4 = np.linalg.norm(wind.velocity(p, 4, 2.0))
        assert u4 == pytest.approx(u0 * 2.0)  # 1 + 0.25*4

    def test_deterministic(self, wind):
        p = np.array([[30.0, 30.0]])
        assert np.array_equal(wind.velocity(p, 1, 7.0), wind.velocity(p, 1, 7.0))

    def test_bad_points_shape(self, wind):
        with pytest.raises(ValueError):
            wind.velocity(np.zeros((3, 3)))


class TestMaxSpeedAndCFL:
    def test_max_speed_bounds_actual(self, wind):
        rng = np.random.default_rng(0)
        pts = rng.uniform([0, 0], [200, 150], size=(500, 2))
        for layer in (0, 4):
            umax = wind.max_speed(layer, 9.0)
            speeds = np.linalg.norm(wind.velocity(pts, layer, 9.0), axis=1)
            assert speeds.max() <= umax + 1e-12

    def test_cfl_steps_scale_with_resolution(self, wind):
        coarse = wind.cfl_steps_per_hour(20.0, 4, 0.0)
        fine = wind.cfl_steps_per_hour(2.0, 4, 0.0)
        assert fine > coarse
        assert coarse >= 1

    def test_cfl_rejects_bad_cell(self, wind):
        with pytest.raises(ValueError):
            wind.cfl_steps_per_hour(0.0, 0, 0.0)

    def test_zero_wind_one_step(self):
        calm = WindField(domain=(100.0, 100.0), base_speed=0.0, vortex_speed=0.0)
        assert calm.cfl_steps_per_hour(5.0, 0, 0.0) == 1


class TestValidation:
    def test_bad_domain(self):
        with pytest.raises(ValueError):
            WindField(domain=(0.0, 10.0))

    def test_bad_speed(self):
        with pytest.raises(ValueError):
            WindField(domain=(10.0, 10.0), base_speed=-1.0)

    def test_bad_period(self):
        with pytest.raises(ValueError):
            WindField(domain=(10.0, 10.0), period_hours=0.0)
