"""Numerical convergence and robustness of the transport operators."""

import numpy as np

from repro.grid import UniformGrid, triangulate
from repro.transport import SUPGTransport, Splitting1DTransport


def mesh_of(n, size=100.0):
    xs, ys = np.meshgrid(np.linspace(0, size, n), np.linspace(0, size, n))
    return triangulate(np.column_stack([xs.ravel(), ys.ravel()]))


def diffusion_error(mesh, K, dt, steps, sigma0=10.0):
    """L2 error against the exact Gaussian diffusion solution."""
    pts = mesh.points
    d2 = (pts[:, 0] - 50.0) ** 2 + (pts[:, 1] - 50.0) ** 2
    c0 = np.exp(-0.5 * d2 / sigma0**2)
    op = SUPGTransport(mesh, diffusivity=K).prepare(
        np.zeros((mesh.npoints, 2)), dt
    )
    c = c0[None, :]
    for _ in range(steps):
        c, _ = op.step(c)
    t = steps * dt
    sigma_t2 = sigma0**2 + 2.0 * K * t
    exact = (sigma0**2 / sigma_t2) * np.exp(-0.5 * d2 / sigma_t2)
    err = np.sqrt(((c[0] - exact) ** 2 * mesh.node_areas).sum())
    norm = np.sqrt((exact**2 * mesh.node_areas).sum())
    return err / norm


class TestSUPGConvergence:
    def test_spatial_refinement_reduces_diffusion_error(self):
        """P1 elements: refining a *resolving* mesh shrinks the L2 error
        at ~second order (on the 9-point mesh the blob is unresolved, so
        convergence starts from n=17)."""
        K, dt, steps = 5e-3, 50.0, 20
        errs = [diffusion_error(mesh_of(n), K, dt, steps) for n in (17, 33, 65)]
        assert errs[1] < errs[0]
        assert errs[2] < errs[1]
        # Second order: each halving of h cuts the error ~4x.
        assert errs[0] / errs[2] > 8.0

    @staticmethod
    def _advection_error(mesh, dt, horizon=1200.0, speed=0.01):
        u = np.tile([speed, 0.0], (mesh.npoints, 1))
        pts = mesh.points
        d2_0 = (pts[:, 0] - 30.0) ** 2 + (pts[:, 1] - 50.0) ** 2
        c0 = np.exp(-0.5 * d2_0 / 8.0**2)
        op = SUPGTransport(mesh, diffusivity=1e-6).prepare(u, dt)
        c = c0[None, :]
        for _ in range(int(horizon / dt)):
            c, _ = op.step(c)
        dx = speed * horizon
        d2_t = (pts[:, 0] - 30.0 - dx) ** 2 + (pts[:, 1] - 50.0) ** 2
        exact = np.exp(-0.5 * d2_t / 8.0**2)
        return float(np.sqrt(((c[0] - exact) ** 2 * mesh.node_areas).sum()))

    def test_advection_error_is_mesh_limited(self):
        """For this discretisation the advection error is dominated by
        spatial dispersion: dt refinement converges to a plateau..."""
        mesh = mesh_of(21)
        e75 = self._advection_error(mesh, 75.0)
        e37 = self._advection_error(mesh, 37.5)
        assert abs(e75 - e37) / e37 < 0.01

    def test_spatial_refinement_reduces_advection_error(self):
        """...and refining the mesh is what actually reduces it."""
        e_coarse = self._advection_error(mesh_of(21), 75.0)
        e_fine = self._advection_error(mesh_of(41), 75.0)
        assert e_fine < 0.7 * e_coarse


class TestRobustness:
    def test_supg_handles_zero_concentration(self):
        mesh = mesh_of(9)
        op = SUPGTransport(mesh, diffusivity=1e-3).prepare(
            np.full((mesh.npoints, 2), 0.01), 60.0
        )
        out, _ = op.step(np.zeros((3, mesh.npoints)))
        assert np.allclose(out, 0.0)

    def test_supg_handles_extreme_magnitudes(self):
        mesh = mesh_of(9)
        op = SUPGTransport(mesh, diffusivity=1e-3).prepare(
            np.full((mesh.npoints, 2), 0.01), 60.0
        )
        big = np.full((1, mesh.npoints), 1e12)
        out, _ = op.step(big)
        assert np.all(np.isfinite(out))
        assert out.max() < 1.01e12

    def test_1d_cfl_far_exceeded_stays_stable(self):
        """Implicit upwind is unconditionally stable: Courant 50."""
        grid = UniformGrid(domain=(100.0, 100.0), nx=20, ny=20)
        tr = Splitting1DTransport(grid, diffusivity=1e-3)
        u = np.tile([0.05, -0.05], (grid.npoints, 1))  # 50 m/s gale
        c = np.zeros((1, grid.npoints))
        c[0, grid.npoints // 2] = 1.0
        for _ in range(5):
            c, _ = tr.step(c, u, dt=5000.0)
            assert np.all(np.isfinite(c))
            assert c.min() >= -1e-12
            assert c.max() <= 1.0 + 1e-9

    def test_supg_strong_wind_no_blowup(self):
        mesh = mesh_of(13)
        u = np.tile([0.05, 0.05], (mesh.npoints, 1))
        op = SUPGTransport(mesh, diffusivity=1e-4).prepare(u, 300.0)
        pts = mesh.points
        c = np.exp(
            -0.5 * ((pts[:, 0] - 50) ** 2 + (pts[:, 1] - 50) ** 2) / 64.0
        )[None, :]
        for _ in range(20):
            c, _ = op.step(c)
        assert np.all(np.isfinite(c))
        assert np.abs(c).max() < 2.0
