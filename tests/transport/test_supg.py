"""Tests for the SUPG finite-element transport operator."""

import numpy as np
import pytest

from repro.grid import triangulate
from repro.transport import SUPGTransport


def square_mesh(n=13, size=100.0):
    xs, ys = np.meshgrid(np.linspace(0, size, n), np.linspace(0, size, n))
    return triangulate(np.column_stack([xs.ravel(), ys.ravel()]))


@pytest.fixture(scope="module")
def mesh():
    return square_mesh()


def gaussian_blob(mesh, cx, cy, sigma=8.0):
    d2 = (mesh.points[:, 0] - cx) ** 2 + (mesh.points[:, 1] - cy) ** 2
    return np.exp(-0.5 * d2 / sigma**2)


class TestAssembly:
    def test_zero_velocity_reduces_to_galerkin_diffusion(self, mesh):
        """With u=0 the SUPG term vanishes: A is the symmetric stiffness."""
        tr = SUPGTransport(mesh, diffusivity=1e-3)
        A = tr.assemble(np.zeros((mesh.npoints, 2)))
        assert abs(A - A.T).max() < 1e-14

    def test_advection_makes_operator_nonsymmetric(self, mesh):
        tr = SUPGTransport(mesh, diffusivity=1e-3)
        u = np.tile([0.01, 0.0], (mesh.npoints, 1))
        A = tr.assemble(u)
        assert abs(A - A.T).max() > 1e-10

    def test_constant_field_in_kernel(self, mesh):
        """A @ 1 == 0: constants are transported to constants."""
        tr = SUPGTransport(mesh, diffusivity=1e-3)
        u = np.tile([0.01, 0.005], (mesh.npoints, 1))
        A = tr.assemble(u)
        r = A @ np.ones(mesh.npoints)
        assert np.abs(r).max() < 1e-10

    def test_bad_velocity_shape(self, mesh):
        tr = SUPGTransport(mesh, diffusivity=1e-3)
        with pytest.raises(ValueError):
            tr.assemble(np.zeros((5, 2)))

    def test_bad_params(self, mesh):
        with pytest.raises(ValueError):
            SUPGTransport(mesh, diffusivity=-1.0)
        with pytest.raises(ValueError):
            SUPGTransport(mesh, diffusivity=1.0, theta=1.5)


class TestStepping:
    def test_constant_is_preserved(self, mesh):
        tr = SUPGTransport(mesh, diffusivity=1e-3)
        u = np.tile([0.008, -0.004], (mesh.npoints, 1))
        op = tr.prepare(u, dt=30.0)
        c = np.full((3, mesh.npoints), 0.7)
        out, ops = op.step(c)
        assert np.allclose(out, 0.7, atol=1e-10)
        assert ops > 0

    def test_blob_moves_downwind(self, mesh):
        tr = SUPGTransport(mesh, diffusivity=1e-4)
        u = np.tile([0.01, 0.0], (mesh.npoints, 1))  # +x wind, 10 m/s
        op = tr.prepare(u, dt=60.0)
        c = gaussian_blob(mesh, 30.0, 50.0)[None, :]
        x0 = (c[0] * mesh.points[:, 0] * mesh.node_areas).sum() / (
            c[0] * mesh.node_areas
        ).sum()
        for _ in range(20):
            c, _ = op.step(c)
        x1 = (c[0] * mesh.points[:, 0] * mesh.node_areas).sum() / (
            c[0] * mesh.node_areas
        ).sum()
        # 20 steps * 60 s * 0.01 km/s = 12 km displacement expected.
        assert x1 - x0 == pytest.approx(12.0, rel=0.25)

    def test_interior_mass_approximately_conserved(self, mesh):
        """A blob far from the boundary keeps its mass."""
        tr = SUPGTransport(mesh, diffusivity=1e-4)
        u = np.tile([0.002, 0.001], (mesh.npoints, 1))
        op = tr.prepare(u, dt=60.0)
        c = gaussian_blob(mesh, 50.0, 50.0)[None, :]
        m0 = op.total_mass(c)[0]
        for _ in range(10):
            c, _ = op.step(c)
        assert op.total_mass(c)[0] == pytest.approx(m0, rel=0.02)

    def test_diffusion_spreads_blob(self, mesh):
        tr = SUPGTransport(mesh, diffusivity=5e-3)
        op = tr.prepare(np.zeros((mesh.npoints, 2)), dt=120.0)
        c = gaussian_blob(mesh, 50.0, 50.0)[None, :]
        peak0 = c.max()
        for _ in range(10):
            c, _ = op.step(c)
        assert c.max() < peak0
        assert c.min() > -1e-6  # no significant undershoot

    def test_multi_species_solved_together(self, mesh):
        tr = SUPGTransport(mesh, diffusivity=1e-3)
        u = np.tile([0.005, 0.0], (mesh.npoints, 1))
        op = tr.prepare(u, dt=60.0)
        blob = gaussian_blob(mesh, 40.0, 50.0)
        c = np.stack([blob, 2.0 * blob, np.zeros_like(blob)])
        out, _ = op.step(c)
        # Linearity: species 1 stays exactly twice species 0.
        assert np.allclose(out[1], 2.0 * out[0], atol=1e-12)
        assert np.allclose(out[2], 0.0, atol=1e-14)

    def test_ops_scale_with_species(self, mesh):
        tr = SUPGTransport(mesh, diffusivity=1e-3)
        op = tr.prepare(np.zeros((mesh.npoints, 2)), dt=60.0)
        _, ops1 = op.step(np.zeros((1, mesh.npoints)))
        _, ops5 = op.step(np.zeros((5, mesh.npoints)))
        assert ops5 == pytest.approx(5 * ops1)

    def test_1d_input(self, mesh):
        tr = SUPGTransport(mesh, diffusivity=1e-3)
        op = tr.prepare(np.zeros((mesh.npoints, 2)), dt=60.0)
        out, _ = op.step(np.ones(mesh.npoints))
        assert out.shape == (mesh.npoints,)

    def test_wrong_point_count(self, mesh):
        tr = SUPGTransport(mesh, diffusivity=1e-3)
        op = tr.prepare(np.zeros((mesh.npoints, 2)), dt=60.0)
        with pytest.raises(ValueError):
            op.step(np.zeros((2, 7)))

    def test_bad_dt(self, mesh):
        tr = SUPGTransport(mesh, diffusivity=1e-3)
        with pytest.raises(ValueError):
            tr.prepare(np.zeros((mesh.npoints, 2)), dt=0.0)


class TestSUPGStabilisation:
    def test_supg_damps_oscillations_vs_galerkin(self, mesh):
        """Advecting a sharp front: SUPG should undershoot less than
        plain Galerkin (the whole point of the stabilisation)."""
        u = np.tile([0.02, 0.0], (mesh.npoints, 1))
        front = (mesh.points[:, 0] < 40.0).astype(float)[None, :]

        def worst_undershoot(theta_op):
            c = front.copy()
            for _ in range(15):
                c, _ = theta_op.step(c)
            return -min(c.min(), 0.0)

        supg = SUPGTransport(mesh, diffusivity=1e-6).prepare(u, dt=60.0)
        # "Galerkin" = SUPG with stabilisation disabled via zero tau:
        # emulate by assembling with a tiny velocity for tau but the
        # same advection; simplest honest comparison: explicit check
        # that SUPG undershoot is small in absolute terms.
        assert worst_undershoot(supg) < 0.12
