"""Tests for the command-line interface (driven in-process)."""

import pickle

import pytest

from repro.cli import DATASETS, build_parser, main


@pytest.fixture(scope="module")
def demo_trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.pkl"
    rc = main([
        "simulate", "--dataset", "demo", "--hours", "1",
        "--trace", str(path),
    ])
    assert rc == 0
    return path


class TestSimulate:
    def test_writes_valid_trace(self, demo_trace_file):
        from repro.model import WorkloadTrace

        with demo_trace_file.open("rb") as fh:
            trace = pickle.load(fh)
        assert isinstance(trace, WorkloadTrace)
        assert trace.nhours == 1

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--dataset", "mars"])

    def test_dataset_registry(self):
        # the registry is extensible (register_dataset), so other test
        # modules may have added entries; the built-ins must be there
        assert {"la", "ne", "demo"} <= set(DATASETS)


class TestReplay:
    def test_data_parallel(self, demo_trace_file, capsys):
        rc = main(["replay", "--trace", str(demo_trace_file),
                   "--machine", "t3e", "--nodes", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "data-parallel" in out
        assert "Cray T3E" in out

    def test_task_parallel(self, demo_trace_file, capsys):
        rc = main(["replay", "--trace", str(demo_trace_file),
                   "--machine", "paragon", "--nodes", "16", "--mode", "task"])
        assert rc == 0
        assert "task-parallel" in capsys.readouterr().out

    def test_best_mode(self, demo_trace_file, capsys):
        rc = main(["replay", "--trace", str(demo_trace_file),
                   "--machine", "paragon", "--nodes", "4", "--mode", "best"])
        assert rc == 0
        assert "configuration:" in capsys.readouterr().out

    def test_bad_trace_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["replay", "--trace", str(tmp_path / "nope.pkl")])

    def test_non_trace_pickle_rejected(self, tmp_path):
        bad = tmp_path / "bad.pkl"
        with bad.open("wb") as fh:
            pickle.dump({"not": "a trace"}, fh)
        with pytest.raises(SystemExit):
            main(["replay", "--trace", str(bad)])


class TestPredict:
    def test_prediction_table(self, demo_trace_file, capsys):
        rc = main(["predict", "--trace", str(demo_trace_file),
                   "--machine", "t3d", "--nodes", "4", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted" in out
        assert "error" in out


class TestFigures:
    def test_writes_all_figure_files(self, demo_trace_file, tmp_path, capsys):
        out_dir = tmp_path / "figs"
        rc = main(["figures", "--trace", str(demo_trace_file),
                   "--out", str(out_dir)])
        assert rc == 0
        names = {p.name for p in out_dir.glob("*.txt")}
        assert names == {
            "fig2_machines.txt", "fig4_components.txt",
            "fig5_redistribution.txt", "fig6_comm_predicted.txt",
            "fig7_comp_predicted.txt", "fig9_taskparallel.txt",
        }


class TestTrace:
    def test_writes_chrome_trace(self, demo_trace_file, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        rc = main(["trace", "--workload", str(demo_trace_file),
                   "--machine", "t3e", "--nodes", "8", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["counters"]["phases:compute"] > 0
        text = capsys.readouterr().out
        assert "utilisation" in text
        assert "data-parallel" in text

    def test_trace_utilization_matches_export(self, demo_trace_file, tmp_path):
        """Per-node dur sums in the JSON equal the metric buckets."""
        import collections
        import json

        from repro.model import replay_data_parallel
        from repro.observe import Tracer
        from repro.vm import get_machine, usage_from_spans

        out = tmp_path / "trace.json"
        rc = main(["trace", "--workload", str(demo_trace_file),
                   "--machine", "t3e", "--nodes", "4", "--out", str(out)])
        assert rc == 0
        busy = collections.defaultdict(float)
        for ev in json.loads(out.read_text())["traceEvents"]:
            if ev["ph"] == "X" and ev["args"]["kind"] in ("compute", "io", "comm"):
                busy[ev["tid"]] += ev["dur"] / 1e6
        tracer = Tracer()
        replay_data_parallel(pickle.loads(demo_trace_file.read_bytes()),
                             get_machine("t3e"), 4, tracer=tracer)
        report = usage_from_spans(tracer.spans, 4)
        for node_id, usage in report.nodes.items():
            assert busy[node_id] == pytest.approx(usage.busy)

    def test_task_mode_with_csv_and_compare(self, demo_trace_file, tmp_path,
                                            capsys):
        out = tmp_path / "trace.json"
        csv_path = tmp_path / "spans.csv"
        rc = main(["trace", "--workload", str(demo_trace_file),
                   "--nodes", "6", "--mode", "task", "--out", str(out),
                   "--csv", str(csv_path), "--compare"])
        assert rc == 0
        assert csv_path.read_text().startswith("span_id,")
        text = capsys.readouterr().out
        assert "task-parallel" in text
        assert "predicted" in text

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.dataset == "demo"
        assert args.machine == "t3e"
        assert args.nodes == 8
        assert args.out == "trace.json"


class TestCampaign:
    def test_plan_json(self, tmp_path, capsys):
        import json

        rc = main(["campaign", "plan", "--sweep", "ladder",
                   "--dataset", "demo", "--hours", "1",
                   "--nodes", "4", "16",
                   "--cache-dir", str(tmp_path / "c"), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_jobs"] == 2
        assert doc["predicted_makespan_s"] > 0
        assert len(doc["jobs"]) == 2

    def test_run_then_status_then_cached_rerun(self, tmp_path, capsys):
        import json

        cache = str(tmp_path / "c")
        base = ["campaign", "run", "--sweep", "ladder",
                "--dataset", "demo", "--hours", "1", "--nodes", "4", "16",
                "--workers", "2", "--executor", "inline",
                "--cache-dir", cache]
        rc = main(base)
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan: predicted" in out
        assert "2 ok, 0 failed" in out

        rc = main(["campaign", "status", "--cache-dir", cache])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 cached job(s)" in out
        assert "cache counters:" in out          # hit/miss/eviction totals
        assert "jobs shards:" in out             # per-shard occupancy

        rc = main(["campaign", "status", "--cache-dir", cache, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["jobs"]) == 2
        assert doc["cache"]["total_entries"] == 3  # 1 science + 2 jobs
        assert doc["cache"]["counters"]["corrupt_entries"] == 0

        rc = main(base + ["--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cache_hits"] == 2
        assert all(j["status"] == "cached" for j in doc["jobs"])

    def test_run_recovers_from_injected_fault(self, tmp_path, capsys):
        import json

        rc = main(["campaign", "run", "--sweep", "ensemble",
                   "--dataset", "demo", "--hours", "1", "--members", "1",
                   "--workers", "1", "--executor", "inline",
                   "--cache-dir", str(tmp_path / "c"),
                   "--inject-faults", "1", "--backoff", "0", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["complete"] and doc["retries"] == 1
        assert doc["counters"]["campaign:faults"] == 1

    def test_incomplete_campaign_exits_nonzero(self, tmp_path, capsys):
        rc = main(["campaign", "run", "--sweep", "ladder",
                   "--dataset", "demo", "--hours", "1", "--nodes", "4",
                   "--workers", "1", "--executor", "inline",
                   "--cache-dir", str(tmp_path / "c"),
                   "--inject-faults", "1", "--fault-mode", "hang",
                   "--retries", "0"])
        assert rc == 1
        assert "1 failed" in capsys.readouterr().out

    def test_empty_status(self, tmp_path, capsys):
        rc = main(["campaign", "status",
                   "--cache-dir", str(tmp_path / "empty")])
        assert rc == 0
        assert "no cached jobs" in capsys.readouterr().out


class TestChemWorkers:
    """--chem-workers through simulate / campaign / serve."""

    def test_simulate_accepts_chem_workers(self, capsys):
        rc = main(["simulate", "--dataset", "demo", "--hours", "1",
                   "--chem-workers", "2", "--chem-tile-cols", "17"])
        assert rc == 0
        assert "hourly mean O3" in capsys.readouterr().out

    def test_campaign_plan_stamps_cores_and_clamps(self, tmp_path, capsys):
        import json

        rc = main(["campaign", "plan", "--sweep", "ladder",
                   "--dataset", "demo", "--hours", "1",
                   "--nodes", "4", "16", "--workers", "8",
                   "--chem-workers", "4", "--host-cores", "8",
                   "--cache-dir", str(tmp_path / "c"), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workers"] == 2  # 8 host cores / 4 per job

    def test_campaign_run_with_chem_workers_matches_default(
            self, tmp_path, capsys):
        import json

        base = ["campaign", "run", "--sweep", "ladder",
                "--dataset", "demo", "--hours", "1", "--nodes", "4",
                "--workers", "1", "--executor", "inline", "--json"]
        rc = main(base + ["--cache-dir", str(tmp_path / "a")])
        assert rc == 0
        plain = json.loads(capsys.readouterr().out)
        rc = main(base + ["--cache-dir", str(tmp_path / "b"),
                          "--chem-workers", "2"])
        assert rc == 0
        tiled = json.loads(capsys.readouterr().out)
        # cores_per_job is presentation-only: same content keys, and
        # both runs complete (bitwise identity is pinned in
        # tests/chemistry/test_tiled.py / tests/model/test_tiled_driver)
        assert tiled["complete"] and plain["complete"]
        assert [j["key"] for j in tiled["jobs"]] == \
            [j["key"] for j in plain["jobs"]]
        from repro.sched import ResultCache, status_rows

        sha_a = [r["sha256"] for r in status_rows(ResultCache(tmp_path / "a"))]
        sha_b = [r["sha256"] for r in status_rows(ResultCache(tmp_path / "b"))]
        assert sha_a and sha_a == sha_b

    def test_defaults(self):
        for argv in (["simulate"], ["campaign", "plan"], ["serve"]):
            args = build_parser().parse_args(argv)
            assert args.chem_workers == 1


class TestServe:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.root == ".repro-service"
        assert args.port == 8642
        assert args.workers == 4
        assert args.executor == "thread"
        assert args.cache_shards == 16
        assert args.cache_max_bytes is None
        assert args.chem_workers == 1

    def test_bad_tenant_weight_rejected(self):
        import pytest

        with pytest.raises(SystemExit, match="tenant-weight"):
            main(["serve", "--tenant-weight", "alice"])
        with pytest.raises(SystemExit, match="not a number"):
            main(["serve", "--tenant-weight", "alice=fast"])

    def test_campaign_run_server_defaults(self):
        args = build_parser().parse_args(["campaign", "run"])
        assert args.server is None
        assert args.tenant == "default"

    def test_campaign_run_against_live_service(self, tmp_path, capsys):
        import threading

        from repro.service import CampaignService, build_http_server

        service = CampaignService(tmp_path / "svc", workers=2,
                                  executor="inline")
        server = build_http_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        service.start()
        host, port = server.server_address[:2]
        try:
            rc = main(["campaign", "run", "--sweep", "ladder",
                       "--dataset", "demo", "--hours", "1",
                       "--nodes", "4", "16",
                       "--server", f"http://{host}:{port}",
                       "--tenant", "alice"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "submitted campaign c000001" in out
            assert "done (2/2 ok)" in out
        finally:
            server.shutdown()
            service.stop()


class TestBench:
    def test_quick_suite_appends_history(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_perf.json"
        rc = main(["bench", "--quick", "--out", str(out)])
        assert rc == 0
        history = json.loads(out.read_text())
        assert len(history["runs"]) == 1
        assert history["runs"][-1]["meta"]["mode"] == "quick"
        assert "appended run" in capsys.readouterr().out

    def test_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert not args.quick
        assert args.out is None
        assert args.check_regression is None


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["replay", "--trace", "x.pkl"])
        assert args.machine == "t3e"
        assert args.nodes == 16
        assert args.mode == "data"

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign", "plan"])
        assert args.sweep == "machines"
        assert args.dataset == "la"
        assert args.workers == 4
        assert args.executor == "thread"
        assert args.cache_dir == ".repro-cache"
