"""Tests for elevated point sources."""

import numpy as np
import pytest

from repro.chemistry import default_layer_heights
from repro.datasets import (
    DatasetSpec,
    PointSource,
    elevated_emissions,
    injection_layer,
)
from repro.grid import RefinementCore
from repro.model import AirshedConfig, SequentialAirshed

POWER_PLANT = PointSource(
    x=30.0, y=40.0, plume_height=180.0,
    strengths={"NO": 5e-5, "SO2": 8e-5},
    name="coastal-plant",
)

SPEC_WITH_PLANT = DatasetSpec(
    name="plant-city",
    domain=(120.0, 90.0),
    base_shape=(4, 3),
    npoints=12 + 3 * 14,
    cores=(RefinementCore(40.0, 40.0, 5.0, 20.0),),
    layers=3,
    seed=1,
    point_sources=(POWER_PLANT,),
)


class TestPointSource:
    def test_validation(self):
        with pytest.raises(ValueError):
            PointSource(0, 0, -1.0, {"NO": 1e-5})
        with pytest.raises(ValueError):
            PointSource(0, 0, 100.0, {})
        with pytest.raises(ValueError):
            PointSource(0, 0, 100.0, {"NO": -1e-5})

    def test_diurnal_range(self):
        loads = [POWER_PLANT.diurnal(h) for h in range(24)]
        assert all(0.8 <= v <= 1.0 for v in loads)
        assert max(loads) > min(loads)  # mild daytime peak


class TestInjectionLayer:
    def test_layer_selection(self):
        heights = default_layer_heights(4)  # 50, 100, 200, 400 m
        assert injection_layer(10.0, heights) == 0
        assert injection_layer(50.0, heights) == 0   # boundary -> below
        assert injection_layer(60.0, heights) == 1
        assert injection_layer(180.0, heights) == 2
        assert injection_layer(10_000.0, heights) == 3  # clamped to top


class TestElevatedField:
    def test_no_sources_is_none(self):
        E = elevated_emissions(
            (), 8, np.zeros((5, 2)), default_layer_heights(3), {"NO": 0}, 35
        )
        assert E is None

    def test_injection_into_correct_cell(self):
        points = np.array([[10.0, 10.0], [30.0, 40.0], [80.0, 70.0]])
        heights = default_layer_heights(3)  # 50, 100, 200
        E = elevated_emissions(
            (POWER_PLANT,), 12, points, heights, {"NO": 0, "SO2": 1}, 2
        )
        # Plume at 180 m -> layer 2; nearest point is index 1.
        assert E.shape == (2, 3, 3)
        assert E[0, 2, 1] > 0 and E[1, 2, 1] > 0
        assert E[:, 0:2, :].sum() == 0
        assert E[:, :, [0, 2]].sum() == 0

    def test_unknown_species_rejected(self):
        src = PointSource(0, 0, 100.0, {"UNOBTAINIUM": 1e-5})
        with pytest.raises(ValueError, match="unknown species"):
            elevated_emissions(
                (src,), 0, np.zeros((2, 2)), default_layer_heights(3),
                {"NO": 0}, 35,
            )


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self):
        with_plant = SPEC_WITH_PLANT.build()
        base_spec = DatasetSpec(
            **{**SPEC_WITH_PLANT.__dict__, "point_sources": ()}
        )
        without_plant = base_spec.build()
        cfg_kwargs = dict(hours=3, start_hour=10, max_steps=3)
        res_with = SequentialAirshed(
            AirshedConfig(dataset=with_plant, **cfg_kwargs)
        ).run()
        res_without = SequentialAirshed(
            AirshedConfig(dataset=without_plant, **cfg_kwargs)
        ).run()
        return with_plant, res_with, res_without

    def test_hourly_record_roundtrips(self):
        from repro.io import pack_hourly, unpack_hourly

        ds = SPEC_WITH_PLANT.build()
        cond = ds.hourly(12)
        assert cond.elevated is not None
        back = unpack_hourly(pack_hourly(cond))
        assert np.array_equal(back.elevated, cond.elevated)

    def test_plume_species_appear_aloft(self, runs):
        ds, res_with, res_without = runs
        mech = ds.mechanism
        # SO2 in the injection layer (2) is higher with the plant.
        so2_with = res_with.final_conc[mech.index["SO2"], 2]
        so2_without = res_without.final_conc[mech.index["SO2"], 2]
        assert so2_with.max() > so2_without.max() * 1.05

    def test_surface_less_affected_than_aloft(self, runs):
        ds, res_with, res_without = runs
        mech = ds.mechanism
        d_aloft = (
            res_with.final_conc[mech.index["SO2"], 2]
            - res_without.final_conc[mech.index["SO2"], 2]
        ).max()
        d_surface = (
            res_with.final_conc[mech.index["SO2"], 0]
            - res_without.final_conc[mech.index["SO2"], 0]
        ).max()
        assert d_aloft > d_surface
