"""Tests for dataset generation (LA and NE)."""

import numpy as np
import pytest

from repro.datasets import make_la, make_ne


@pytest.fixture(scope="module")
def la():
    return make_la()


class TestShapes:
    def test_la_paper_dimensions(self, la):
        """Paper: A(35, 5, 700) for Los Angeles."""
        assert la.shape == (35, 5, 700)
        assert la.array_nbytes() == 35 * 5 * 700 * 8

    @pytest.mark.slow
    def test_ne_paper_dimensions(self):
        """Paper: A(35, 5, 3328) for the North East US."""
        ne = make_ne()
        assert ne.shape == (35, 5, 3328)

    def test_mesh_matches_grid(self, la):
        assert la.mesh.npoints == la.grid.npoints == 700


class TestHourlyConditions:
    def test_deterministic(self, la):
        h1, h2 = la.hourly(9), la.hourly(9)
        assert np.array_equal(h1.emissions, h2.emissions)
        assert h1.temperature == h2.temperature

    def test_diurnal_sun_cycle(self, la):
        assert la.hourly(0).sun == 0.0          # night
        assert la.hourly(13).sun > 0.9           # midday
        assert la.hourly(23).sun == 0.0

    def test_rush_hour_emissions_peak(self, la):
        e_night = la.hourly(3).emissions.sum()
        e_rush = la.hourly(8).emissions.sum()
        assert e_rush > 2.0 * e_night

    def test_emissions_concentrated_at_cores(self, la):
        E = la.hourly(8).emissions
        mech = la.mechanism
        no = E[mech.index["NO"]]
        # peak emission near the main core, low at domain corner
        core = la.grid.cores[0]
        d = np.hypot(
            la.grid.points[:, 0] - core.x, la.grid.points[:, 1] - core.y
        )
        assert no[d < 30].mean() > 10 * no[d > 150].mean()

    def test_biogenic_isoprene_daylight_only(self, la):
        mech = la.mechanism
        assert la.hourly(13).emissions[mech.index["ISOP"]].sum() > 0
        # At night only the (traffic) anthropogenic part remains: zero
        # for isoprene, which is purely biogenic here.
        assert la.hourly(2).emissions[mech.index["ISOP"]].sum() == 0.0

    def test_boundary_is_clean_air(self, la):
        b = la.hourly(6).boundary
        mech = la.mechanism
        assert b[mech.index["O3"]] == pytest.approx(0.04)
        assert b[mech.index["NO"]] < 1e-3

    def test_nbytes_positive(self, la):
        assert la.hourly(0).nbytes() > la.npoints * la.n_species * 8


class TestInitialConditions:
    def test_shape_and_nonnegative(self, la):
        c0 = la.initial_conditions()
        assert c0.shape == la.shape
        assert np.all(c0 >= 0)

    def test_pollution_decays_with_altitude(self, la):
        c0 = la.initial_conditions()
        no2 = c0[la.mechanism.index["NO2"]]
        assert no2[0].mean() > no2[-1].mean()

    def test_background_everywhere(self, la):
        c0 = la.initial_conditions()
        o3 = c0[la.mechanism.index["O3"]]
        assert np.all(o3 >= 0.039)


class TestRuntimeSteps:
    def test_steps_within_bounds(self, la):
        for hour in range(24):
            n = la.steps_per_hour(hour)
            assert 2 <= n <= 12

    def test_steps_deterministic(self, la):
        assert la.steps_per_hour(7) == la.steps_per_hour(7)
