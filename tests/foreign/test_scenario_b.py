"""Tests for the scenario-B (direct scatter) foreign data path."""

import numpy as np
import pytest

from repro.chemistry import cit_mechanism
from repro.foreign import (
    ForeignModuleBinding,
    PopExpPvm,
    PopulationRaster,
    Scenario,
    exposure_sequential,
)
from repro.vm import Cluster, MachineSpec

TOY = MachineSpec("toy", latency=1e-4, gap=1e-8, copy_cost=5e-9,
                  seconds_per_op=1e-8, io_seconds_per_byte=1e-7)


@pytest.fixture(scope="module")
def mech():
    return cit_mechanism()


def setup(n_native=4, n_foreign=3, scenario=Scenario.B):
    cluster = Cluster(TOY, n_native + n_foreign)
    native = cluster.subgroup(range(n_native))
    foreign = cluster.subgroup(range(n_native, n_native + n_foreign))
    return ForeignModuleBinding(native, foreign, scenario=scenario), cluster, foreign


class TestTransferScattered:
    def test_blocks_reassemble_to_payload(self, mech):
        binding, _, _ = setup()
        payload = np.arange(35.0 * 30).reshape(35, 30)
        blocks = binding.transfer_scattered(payload, axis=1)
        assert len(blocks) == 3
        assert np.array_equal(np.concatenate(blocks, axis=1), payload)

    def test_wrong_scenario_rejected(self, mech):
        binding, _, _ = setup(scenario=Scenario.A)
        with pytest.raises(ValueError):
            binding.transfer_scattered(np.zeros((2, 6)))

    def test_charges_direct_messages(self, mech):
        binding, cluster, _ = setup(n_native=4, n_foreign=2)
        binding.transfer_scattered(np.zeros((4, 8)), axis=1)
        rec = cluster.timeline.records(name="foreign:B")[0]
        # 4 native senders x 2 foreign receivers.
        assert rec.total_messages_sent() == 8

    def test_cheaper_than_scenario_a(self, mech):
        payload = np.zeros((35, 1000))
        binding_b, cluster_b, _ = setup(scenario=Scenario.B)
        binding_a, cluster_a, _ = setup(scenario=Scenario.A)
        binding_b.transfer_scattered(payload, axis=1)
        binding_a.transfer_to_foreign(payload)
        t_b = cluster_b.time()
        t_a = cluster_a.time()
        assert t_b < t_a


class TestScatteredPopExp:
    def test_matches_sequential(self, mech):
        rng = np.random.default_rng(3)
        npts = 40
        field = np.zeros((mech.n_species, npts))
        field[mech.index["O3"]] = rng.uniform(0, 0.2, npts)
        population = PopulationRaster(population=rng.uniform(0, 1e5, npts))
        ref = exposure_sequential([field], population, mech)

        binding, cluster, foreign = setup()
        popexp = PopExpPvm(foreign, population, mech)
        blocks = binding.transfer_scattered(field, axis=1)
        hourly = popexp.process_hour_scattered(blocks)
        assert np.allclose(hourly, ref)

    def test_skips_internal_scatter_messages(self, mech):
        """Scenario B removes the foreign module's internal scatter:
        only the gather messages remain inside the PVM program."""
        rng = np.random.default_rng(4)
        npts = 30
        field = np.zeros((mech.n_species, npts))
        field[mech.index["O3"]] = rng.uniform(0, 0.2, npts)
        population = PopulationRaster(population=rng.uniform(0, 1e3, npts))

        binding, cluster, foreign = setup(n_foreign=3)
        popexp = PopExpPvm(foreign, population, mech)
        blocks = binding.transfer_scattered(field, axis=1)
        popexp.process_hour_scattered(blocks)
        pvm_sends = cluster.timeline.records(name="pvm:send")
        assert len(pvm_sends) == 2  # gather only (2 workers -> master)

    def test_wrong_block_count_rejected(self, mech):
        _, _, foreign = setup(n_foreign=3)
        population = PopulationRaster(population=np.ones(10))
        popexp = PopExpPvm(foreign, population, mech)
        with pytest.raises(ValueError):
            popexp.process_hour_scattered([np.zeros((35, 5))] * 2)
