"""Tests for the PVM-like message-passing library."""

import numpy as np
import pytest

from repro.foreign import PvmError, PvmSystem
from repro.vm import Cluster, MachineSpec

TOY = MachineSpec("toy", latency=1.0, gap=0.01, copy_cost=0.001,
                  seconds_per_op=1.0, io_seconds_per_byte=1.0)


@pytest.fixture
def pvm():
    cluster = Cluster(TOY, 4)
    return PvmSystem(cluster.subgroup(range(4)))


class TestSendRecv:
    def test_roundtrip_array(self, pvm):
        data = np.arange(10.0)
        t0, t1 = pvm.task(0), pvm.task(1)
        t0.send(t1.tid, data, tag=5)
        out = t1.recv(src_tid=t0.tid, tag=5)
        assert np.array_equal(out, data)

    def test_payload_is_copied(self, pvm):
        data = np.arange(4.0)
        pvm.task(0).send(pvm.task(1).tid, data)
        data[:] = -1.0
        out = pvm.task(1).recv()
        assert np.array_equal(out, np.arange(4.0))

    def test_send_charges_network(self, pvm):
        cluster = pvm.group.cluster
        pvm.task(0).send(pvm.task(1).tid, np.zeros(100))
        rec = cluster.timeline.records(name="pvm:send")[0]
        assert rec.traffic[0].bytes_sent == 800
        assert rec.duration == pytest.approx(1.0 + 0.01 * 800)

    def test_tag_filtering(self, pvm):
        t0, t1 = pvm.task(0), pvm.task(1)
        t0.send(t1.tid, 1.0, tag=1)
        t0.send(t1.tid, 2.0, tag=2)
        assert t1.recv(tag=2) == 2.0
        assert t1.recv(tag=1) == 1.0

    def test_recv_missing_raises(self, pvm):
        with pytest.raises(PvmError, match="deadlock"):
            pvm.task(2).recv()

    def test_bad_tid(self, pvm):
        with pytest.raises(PvmError):
            pvm.task(0).send(0x99999, 1.0)
        with pytest.raises(PvmError):
            pvm.task(9)

    def test_unsupported_payload(self, pvm):
        with pytest.raises(PvmError):
            pvm.task(0).send(pvm.task(1).tid, object())

    def test_work_charges_one_node(self, pvm):
        cluster = pvm.group.cluster
        pvm.task(2).work(5.0)
        assert cluster.clock(2) == pytest.approx(5.0)
        assert cluster.clock(0) == 0.0


class TestCollectives:
    def test_scatter_rows(self, pvm):
        data = np.arange(20.0).reshape(10, 2)
        chunks = pvm.scatter_rows(0, data)
        assert len(chunks) == 4
        assert np.array_equal(np.vstack(chunks), data)
        # Workers can receive their chunks.
        for rank in (1, 2, 3):
            got = pvm.task(rank).recv(src_tid=pvm.task(0).tid, tag=1)
            assert np.array_equal(got, chunks[rank])

    def test_gather_sum(self, pvm):
        partial = {r: np.array([float(r), 1.0]) for r in range(4)}
        total = pvm.gather_sum(0, partial)
        assert np.allclose(total, [0 + 1 + 2 + 3, 4.0])

    def test_master_worker_pattern(self, pvm):
        """A full scatter -> compute -> gather cycle."""
        data = np.arange(12.0).reshape(12, 1)
        chunks = pvm.scatter_rows(0, data, tag=7)
        partial = {}
        for rank in range(4):
            task = pvm.task(rank)
            chunk = chunks[0] if rank == 0 else task.recv(tag=7)
            partial[rank] = np.array([chunk.sum()])
            task.work(float(len(chunk)))
        total = pvm.gather_sum(0, partial, tag=8)
        assert total[0] == pytest.approx(data.sum())
