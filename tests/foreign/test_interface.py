"""Tests for the foreign-module coupling interface and GEMS runs."""

import numpy as np
import pytest

from repro.foreign import ForeignModuleBinding, Scenario, run_integrated
from repro.vm import Cluster, INTEL_PARAGON, MachineSpec

TOY = MachineSpec("toy", latency=1e-4, gap=1e-8, copy_cost=5e-9,
                  seconds_per_op=1e-8, io_seconds_per_byte=1e-7)


def make_binding(scenario, n_native=4, n_foreign=2):
    cluster = Cluster(TOY, n_native + n_foreign)
    native = cluster.subgroup(range(n_native))
    foreign = cluster.subgroup(range(n_native, n_native + n_foreign))
    return ForeignModuleBinding(native, foreign, scenario=scenario), cluster


class TestBinding:
    def test_disjoint_groups_required(self):
        cluster = Cluster(TOY, 4)
        a = cluster.subgroup([0, 1, 2])
        b = cluster.subgroup([2, 3])
        with pytest.raises(ValueError):
            ForeignModuleBinding(a, b)

    def test_same_cluster_required(self):
        c1, c2 = Cluster(TOY, 2), Cluster(TOY, 2)
        with pytest.raises(ValueError):
            ForeignModuleBinding(c1.subgroup([0]), c2.subgroup([1]))

    def test_transfer_delivers_payload(self):
        binding, _ = make_binding(Scenario.A)
        data = np.arange(64.0)
        out = binding.transfer_to_foreign(data)
        assert np.array_equal(out, data)
        assert out is not data

    @pytest.mark.parametrize("scenario", list(Scenario))
    def test_transfer_charges_phase(self, scenario):
        binding, cluster = make_binding(scenario)
        binding.transfer_to_foreign(np.zeros(1000))
        recs = cluster.timeline.records(name=f"foreign:{scenario.name}")
        assert len(recs) == 1
        assert recs[0].duration > 0

    def test_scenario_cost_ordering(self):
        """Figure 11: A (relay) >= B (direct) >= C (variable-to-variable)."""
        nbytes = 8 * 50_000
        costs = {}
        for scenario in Scenario:
            binding, _ = make_binding(scenario)
            costs[scenario] = binding.relative_cost(nbytes)
        assert costs[Scenario.A] > costs[Scenario.B] > costs[Scenario.C]

    def test_scenario_a_relay_bottleneck(self):
        """In scenario A the representative handles the whole payload."""
        binding, cluster = make_binding(Scenario.A)
        binding.transfer_to_foreign(np.zeros(10_000))
        rec = cluster.timeline.records(name="foreign:A")[0]
        rep_traffic = rec.traffic[binding.representative]
        assert rep_traffic.bytes_sent >= 80_000


class TestIntegratedRuns:
    @pytest.fixture(scope="class")
    def integrated(self, tiny_trace, tiny_dataset):
        native = run_integrated(
            tiny_trace, tiny_dataset, INTEL_PARAGON, 12, mode="native"
        )
        foreign = run_integrated(
            tiny_trace, tiny_dataset, INTEL_PARAGON, 12, mode="foreign"
        )
        return native, foreign

    def test_exposures_identical(self, integrated):
        native, foreign = integrated
        assert np.allclose(native.exposure, foreign.exposure)
        assert native.exposure.sum() >= 0

    def test_foreign_overhead_small_and_positive(self, integrated):
        """Figure 13: foreign module costs a small fixed extra."""
        native, foreign = integrated
        assert foreign.total_time > native.total_time
        overhead = (foreign.total_time - native.total_time) / native.total_time
        assert overhead < 0.30

    def test_needs_enough_nodes(self, tiny_trace, tiny_dataset):
        with pytest.raises(ValueError):
            run_integrated(tiny_trace, tiny_dataset, INTEL_PARAGON, 3)

    def test_unknown_mode(self, tiny_trace, tiny_dataset):
        with pytest.raises(ValueError):
            run_integrated(
                tiny_trace, tiny_dataset, INTEL_PARAGON, 12, mode="weird"
            )

    def test_popexp_overhead_vs_plain_taskparallel(self, tiny_trace, tiny_dataset):
        """Adding PopExp costs something but pipelining hides most."""
        from repro.model import replay_task_parallel

        base = replay_task_parallel(tiny_trace, INTEL_PARAGON, 12).total_time
        withpop = run_integrated(
            tiny_trace, tiny_dataset, INTEL_PARAGON, 12, mode="native"
        ).total_time
        assert withpop >= base * 0.9
