"""Tests for the population exposure model (three implementations)."""

import numpy as np
import pytest

from repro.chemistry import cit_mechanism
from repro.foreign import (
    HEALTH_SPECIES,
    PopExpFx,
    PopExpPvm,
    PopulationRaster,
    exposure_sequential,
)
from repro.foreign.popexp import exposure_kernel, exposure_ops
from repro.vm import Cluster, MachineSpec

TOY = MachineSpec("toy", latency=1e-5, gap=1e-8, copy_cost=1e-8,
                  seconds_per_op=1e-8, io_seconds_per_byte=1e-7)


@pytest.fixture(scope="module")
def mech():
    return cit_mechanism()


def make_fields(mech, npts=40, hours=3, seed=4):
    rng = np.random.default_rng(seed)
    fields = []
    for _ in range(hours):
        f = np.zeros((mech.n_species, npts))
        f[mech.index["O3"]] = rng.uniform(0.0, 0.2, npts)
        f[mech.index["NO2"]] = rng.uniform(0.0, 0.1, npts)
        f[mech.index["AERO"]] = rng.uniform(0.0, 0.02, npts)
        fields.append(f)
    return fields


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(9)
    return PopulationRaster(population=rng.uniform(0, 1e5, 40))


class TestSequential:
    def test_exposure_nonnegative(self, mech, population):
        total = exposure_sequential(make_fields(mech), population, mech)
        assert total.shape == (len(HEALTH_SPECIES),)
        assert np.all(total >= 0)

    def test_threshold_behaviour(self, mech):
        pop = PopulationRaster(population=np.array([1000.0]))
        clean = np.zeros((mech.n_species, 1))
        clean[mech.index["O3"]] = 0.05  # below the 0.08 threshold
        assert exposure_kernel(clean, pop.population, mech).sum() == 0.0
        dirty = np.zeros((mech.n_species, 1))
        dirty[mech.index["O3"]] = 0.18
        expo = exposure_kernel(dirty, pop.population, mech)
        assert expo[0] == pytest.approx(1000.0 * 0.1)

    def test_exposure_scales_with_population(self, mech):
        field = make_fields(mech, hours=1)[0]
        p1 = PopulationRaster(population=np.full(40, 1.0))
        p2 = PopulationRaster(population=np.full(40, 2.0))
        e1 = exposure_sequential([field], p1, mech)
        e2 = exposure_sequential([field], p2, mech)
        assert np.allclose(e2, 2 * e1)

    def test_population_validation(self):
        with pytest.raises(ValueError):
            PopulationRaster(population=np.array([-1.0]))

    def test_raster_from_grid(self):
        from repro.datasets import make_la

        raster = PopulationRaster.from_grid(make_la().grid)
        assert raster.total > 0
        assert len(raster.population) == 700


class TestParallelImplementations:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_fx_matches_sequential(self, mech, population, nodes):
        fields = make_fields(mech)
        ref = exposure_sequential(fields, population, mech)
        cluster = Cluster(TOY, nodes)
        fx = PopExpFx(cluster.subgroup(range(nodes)), population, mech)
        for f in fields:
            fx.process_hour(f)
        assert np.allclose(fx.exposure, ref)

    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_pvm_matches_sequential(self, mech, population, nodes):
        fields = make_fields(mech)
        ref = exposure_sequential(fields, population, mech)
        cluster = Cluster(TOY, nodes)
        pvm = PopExpPvm(cluster.subgroup(range(nodes)), population, mech)
        for f in fields:
            pvm.process_hour(f)
        assert np.allclose(pvm.exposure, ref)

    def test_fx_and_pvm_agree(self, mech, population):
        """'We verified that the Fx and PVM versions of PopExp had the
        same performance behavior' — ours also agree numerically."""
        fields = make_fields(mech)
        c1, c2 = Cluster(TOY, 3), Cluster(TOY, 3)
        fx = PopExpFx(c1.subgroup(range(3)), population, mech)
        pvm = PopExpPvm(c2.subgroup(range(3)), population, mech)
        for f in fields:
            fx.process_hour(f)
            pvm.process_hour(f)
        assert np.allclose(fx.exposure, pvm.exposure)

    def test_pvm_charges_internal_communication(self, mech, population):
        cluster = Cluster(TOY, 4)
        pvm = PopExpPvm(cluster.subgroup(range(4)), population, mech)
        pvm.process_hour(make_fields(mech, hours=1)[0])
        sends = cluster.timeline.records(name="pvm:send")
        assert len(sends) == 6  # 3 scatter + 3 gather messages

    def test_ops_deterministic(self):
        assert exposure_ops(100) == exposure_ops(100)
        assert exposure_ops(200) == 2 * exposure_ops(100)
