"""Shared fixtures: a tiny dataset so model tests stay fast."""

import pytest

from repro.datasets import DatasetSpec
from repro.grid import RefinementCore
from repro.model import AirshedConfig, SequentialAirshed

TINY_SPEC = DatasetSpec(
    name="tiny",
    domain=(120.0, 90.0),
    base_shape=(4, 3),
    npoints=12 + 3 * 14,  # 54 points
    cores=(RefinementCore(40.0, 40.0, 5.0, 20.0),),
    layers=3,
    seed=1,
)


@pytest.fixture(scope="session")
def tiny_dataset():
    return TINY_SPEC.build()


@pytest.fixture(scope="session")
def tiny_config(tiny_dataset):
    return AirshedConfig(dataset=tiny_dataset, hours=3, start_hour=7, max_steps=4)


@pytest.fixture(scope="session")
def tiny_result(tiny_config):
    """One sequential reference run, shared across the module."""
    return SequentialAirshed(tiny_config).run()


@pytest.fixture(scope="session")
def tiny_trace(tiny_result):
    return tiny_result.trace
